// CallScheduler policies: least-expected-work picks, sjf-affinity's
// escape hysteresis, deadline classes, and lifecycle accounting (no
// backlog leaks under reroutes, rescues, and worker kills).

#include <gtest/gtest.h>

#include "hpcwhisk/sched/scheduler.hpp"

namespace hpcwhisk::sched {
namespace {

using sim::SimTime;

const std::vector<WorkerId> kWorkers{0, 1, 2};

SchedConfig config_with(double slack = 2.0, bool deadline = false) {
  SchedConfig cfg;
  cfg.sjf_affinity_slack = slack;
  cfg.deadline_classes = deadline;
  return cfg;
}

/// Runs `calls` to completion on `worker` so it is warm for `function`
/// and the estimator has history.
void warm_up(CallScheduler& sched, WorkerId worker,
             const std::string& function, SimTime duration, int calls,
             CallId base) {
  for (int i = 0; i < calls; ++i) {
    const CallId id = base + static_cast<CallId>(i);
    sched.on_started(id, worker, function);
    (void)sched.on_finished(id, function, duration.ticks(),
                            /*cold_start=*/false);
  }
}

TEST(LeastExpectedWork, PrefersLowestIdWhenIndistinguishable) {
  CallScheduler sched;
  const auto d = sched.route_least_expected_work("fn", kWorkers);
  EXPECT_EQ(d.worker, 0u);
  EXPECT_TRUE(d.expected_cold);
  // Never-seen function: prediction is the prior, cost adds the
  // cold-start overhead on top.
  EXPECT_EQ(d.predicted_ticks, sched.config().estimator.prior.ticks());
  EXPECT_EQ(d.cost_ticks,
            sched.config().estimator.prior.ticks() +
                sched.config().estimator.cold_overhead.ticks());
}

TEST(LeastExpectedWork, WarmWorkerBeatsColdOnes) {
  CallScheduler sched;
  warm_up(sched, /*worker=*/2, "fn", SimTime::millis(10), 5, 1000);
  const auto d = sched.route_least_expected_work("fn", kWorkers);
  EXPECT_EQ(d.worker, 2u);  // cold workers pay the overhead, 2 does not
  EXPECT_FALSE(d.expected_cold);
}

TEST(LeastExpectedWork, AvoidsBackloggedWorker) {
  CallScheduler sched;
  warm_up(sched, 0, "fn", SimTime::millis(10), 5, 1000);
  warm_up(sched, 1, "fn", SimTime::millis(10), 5, 2000);
  // Pile predicted work onto worker 0.
  for (CallId c = 0; c < 10; ++c) {
    const auto d = sched.route_least_expected_work("fn", {0});
    sched.on_routed(c, d);
  }
  EXPECT_GT(sched.ledger().backlog(0), 0);
  const auto d = sched.route_least_expected_work("fn", {0, 1});
  EXPECT_EQ(d.worker, 1u);
}

TEST(SjfAffinity, StaysHomeWithinSlack) {
  CallScheduler sched{config_with(/*slack=*/2.0)};
  warm_up(sched, 0, "fn", SimTime::millis(10), 5, 1000);
  warm_up(sched, 1, "fn", SimTime::millis(10), 5, 2000);
  // A small queue at home (one predicted call) is far under the
  // cold-overhead hysteresis: affinity holds.
  const auto first = sched.route_sjf_affinity("fn", kWorkers, 0);
  sched.on_routed(5000, first);
  const auto d = sched.route_sjf_affinity("fn", kWorkers, 0);
  EXPECT_EQ(d.worker, 0u);
  EXPECT_EQ(sched.stats().affinity_kept, 2u);
  EXPECT_EQ(sched.stats().affinity_escaped, 0u);
}

TEST(SjfAffinity, EscapesWhenHomeQueueExceedsSlackPlusColdStart) {
  CallScheduler sched{config_with(/*slack=*/2.0)};
  warm_up(sched, 0, "fn", SimTime::millis(10), 5, 1000);
  warm_up(sched, 1, "fn", SimTime::millis(10), 5, 2000);
  // Pile ~1s of predicted work on home 0: excess queueing over worker 1
  // now dwarfs slack * 10ms + 500ms cold overhead.
  for (CallId c = 0; c < 100; ++c) {
    const auto d = sched.route_sjf_affinity("fn", {0}, 0);
    sched.on_routed(c, d);
  }
  const auto d = sched.route_sjf_affinity("fn", kWorkers, 0);
  EXPECT_EQ(d.worker, 1u);
  EXPECT_GT(sched.stats().affinity_escaped, 0u);
}

TEST(SjfAffinity, HomeIndexWrapsAroundWorkerList) {
  CallScheduler sched;
  const auto d = sched.route_sjf_affinity("fn", kWorkers, 7);  // 7 % 3 == 1
  EXPECT_EQ(d.worker, 1u);
}

TEST(DeadlineClasses, ShortPredictionsAreShortClass) {
  CallScheduler sched{config_with(2.0, /*deadline=*/true)};
  warm_up(sched, 0, "quick", SimTime::millis(10), 5, 1000);
  warm_up(sched, 0, "slow", SimTime::seconds(30), 5, 2000);
  const auto quick = sched.route_least_expected_work("quick", kWorkers);
  EXPECT_TRUE(quick.short_class);
  const auto slow = sched.route_least_expected_work("slow", kWorkers);
  EXPECT_FALSE(slow.short_class);
  EXPECT_EQ(sched.stats().short_class, 1u);
}

TEST(DeadlineClasses, DisabledByDefault) {
  CallScheduler sched;
  warm_up(sched, 0, "quick", SimTime::millis(10), 5, 1000);
  const auto d = sched.route_least_expected_work("quick", kWorkers);
  EXPECT_FALSE(d.short_class);
}

TEST(DeadlineClasses, DeviationFactorGuardsDispersedFunctions) {
  // Two functions with the same 200 ms mean (under the 250 ms bound):
  // "steady" always takes 200 ms, "wild" alternates 40/360 ms. With the
  // dispersion guard on, only the steady one may jump queues.
  SchedConfig cfg = config_with(2.0, /*deadline=*/true);
  cfg.short_class_deviation_factor = 1.0;
  CallScheduler sched{cfg};
  warm_up(sched, 0, "steady", SimTime::millis(200), 20, 1000);
  for (int i = 0; i < 20; ++i) {
    const CallId id = 2000 + static_cast<CallId>(i);
    sched.on_started(id, 0, "wild");
    (void)sched.on_finished(
        id, "wild", SimTime::millis(i % 2 == 0 ? 40 : 360).ticks(), false);
  }
  EXPECT_LT(sched.estimator().predict("wild"), SimTime::millis(250));
  EXPECT_GT(sched.estimator().deviation("wild"), SimTime::millis(50));
  const auto steady = sched.route_least_expected_work("steady", kWorkers);
  EXPECT_TRUE(steady.short_class);
  const auto wild = sched.route_least_expected_work("wild", kWorkers);
  EXPECT_FALSE(wild.short_class);
}

TEST(DeadlineClasses, ZeroDeviationFactorPreservesPlainBound) {
  // factor 0 (the default) must reproduce the plain predict <= bound
  // test even for a high-dispersion function.
  CallScheduler sched{config_with(2.0, /*deadline=*/true)};
  for (int i = 0; i < 20; ++i) {
    const CallId id = 1000 + static_cast<CallId>(i);
    sched.on_started(id, 0, "wild");
    (void)sched.on_finished(
        id, "wild", SimTime::millis(i % 2 == 0 ? 40 : 360).ticks(), false);
  }
  const auto d = sched.route_least_expected_work("wild", kWorkers);
  EXPECT_TRUE(d.short_class);
}

TEST(PerWorkerRouting, PrefersTheWorkerThatRunsTheFunctionFaster) {
  // Worker 1 is dilated (co-located HPC load): the same function takes
  // 8x longer there. With per-worker models on, least-expected-work
  // routes to the fast worker even though both are warm.
  SchedConfig cfg;
  cfg.estimator.per_worker = true;
  CallScheduler sched{cfg};
  for (int i = 0; i < 20; ++i) {
    const CallId a = 1000 + static_cast<CallId>(2 * i);
    sched.on_started(a, 0, "fn");
    (void)sched.on_finished(a, "fn", SimTime::millis(10).ticks(), false, 0);
    const CallId b = 1001 + static_cast<CallId>(2 * i);
    sched.on_started(b, 1, "fn");
    (void)sched.on_finished(b, "fn", SimTime::millis(80).ticks(), false, 1);
  }
  const auto d = sched.route_least_expected_work("fn", {0, 1});
  EXPECT_EQ(d.worker, 0u);
  // The blended global model would see both workers as identical; the
  // per-worker prediction is what separates them.
  EXPECT_EQ(d.predicted_ticks, SimTime::millis(10).ticks());
}

TEST(PerWorkerRouting, FourArgFinishKeepsGlobalBehavior) {
  // The 4-arg on_finished (no worker attribution) must leave per-worker
  // models empty: predictions equal the global model everywhere.
  SchedConfig cfg;
  cfg.estimator.per_worker = true;
  CallScheduler sched{cfg};
  warm_up(sched, 0, "fn", SimTime::millis(10), 5, 1000);
  EXPECT_EQ(sched.estimator().predict("fn", 0),
            sched.estimator().predict("fn"));
}

TEST(Lifecycle, FinishedReportsForecastErrorAgainstPinnedPrediction) {
  CallScheduler sched;
  warm_up(sched, 0, "fn", SimTime::millis(100), 10, 1000);
  const auto d = sched.route_least_expected_work("fn", kWorkers);
  sched.on_routed(1, d);
  sched.on_started(1, d.worker, "fn");
  const auto out =
      sched.on_finished(1, "fn", SimTime::millis(130).ticks(), false);
  EXPECT_TRUE(out.had_charge);
  EXPECT_TRUE(out.observed);
  // Prediction was pinned at route time (100ms EWMA), so the error is a
  // genuine forecast error — not contaminated by the new sample.
  EXPECT_EQ(out.predicted_ticks, SimTime::millis(100).ticks());
  EXPECT_EQ(out.abs_error_ticks, SimTime::millis(30).ticks());
  EXPECT_EQ(sched.ledger().total(), 0);
}

TEST(Lifecycle, NeverExecutedOutcomeIsNotObserved) {
  CallScheduler sched;
  const auto d = sched.route_least_expected_work("fn", kWorkers);
  sched.on_routed(1, d);
  const auto out = sched.on_finished(1, "fn", /*actual_ticks=*/-1, false);
  EXPECT_TRUE(out.had_charge);
  EXPECT_FALSE(out.observed);
  EXPECT_FALSE(sched.estimator().seen("fn"));
  EXPECT_EQ(sched.ledger().total(), 0);
}

TEST(Lifecycle, FastLaneRerouteDoesNotLeakBacklog) {
  CallScheduler sched;
  // Route -> requeue (drain hand-off) -> restart on another worker ->
  // finish. The charge must follow the call and end at zero.
  const auto d = sched.route_least_expected_work("fn", kWorkers);
  sched.on_routed(1, d);
  EXPECT_GT(sched.ledger().total(), 0);
  sched.on_requeued(1);
  EXPECT_EQ(sched.ledger().total(), 0);
  sched.on_started(1, 2, "fn");  // re-charged against the executor
  EXPECT_GT(sched.ledger().total(), 0);
  EXPECT_EQ(sched.stats().rescue_charges, 1u);
  (void)sched.on_finished(1, "fn", SimTime::millis(10).ticks(), true);
  EXPECT_EQ(sched.ledger().total(), 0);
}

TEST(Lifecycle, ForgetWorkerDropsChargesAndWarmth) {
  CallScheduler sched;
  warm_up(sched, 0, "fn", SimTime::millis(10), 3, 1000);
  for (CallId c = 0; c < 5; ++c) {
    const auto d = sched.route_least_expected_work("fn", {0});
    sched.on_routed(c, d);
  }
  EXPECT_TRUE(sched.is_warm(0, "fn"));
  sched.forget_worker(0);
  EXPECT_FALSE(sched.is_warm(0, "fn"));
  EXPECT_EQ(sched.ledger().backlog(0), 0);
  EXPECT_EQ(sched.ledger().total(), 0);
  EXPECT_EQ(sched.stats().forgotten, 5u);
  // Terminal notifications for the dropped calls are harmless.
  const auto out = sched.on_finished(3, "fn", -1, false);
  EXPECT_FALSE(out.had_charge);
}

TEST(Lifecycle, ChaosInterleavingLeavesZeroBacklog) {
  // Worker-kill chaos: calls in every lifecycle stage when worker 1 dies;
  // survivors restart elsewhere. Invariant: once every call reaches a
  // terminal state the ledger reads exactly zero.
  CallScheduler sched{config_with(2.0, true)};
  warm_up(sched, 0, "fn", SimTime::millis(20), 5, 10000);
  for (CallId c = 0; c < 30; ++c) {
    const auto d = sched.route_sjf_affinity(
        "fn", kWorkers, static_cast<std::size_t>(c));
    sched.on_routed(c, d);
    if (c % 3 == 0) sched.on_started(c, d.worker, "fn");
  }
  sched.forget_worker(1);
  for (CallId c = 0; c < 30; ++c) {
    if (c % 5 == 0) {
      sched.on_requeued(c);          // rescued to the fast lane...
      sched.on_started(c, 2, "fn");  // ...restarts on worker 2
      (void)sched.on_finished(c, "fn", SimTime::millis(25).ticks(), true);
    } else if (c % 5 == 1) {
      (void)sched.on_finished(c, "fn", -1, false);  // timed out
    } else {
      (void)sched.on_finished(c, "fn", SimTime::millis(20).ticks(), false);
    }
  }
  EXPECT_EQ(sched.ledger().total(), 0);
  EXPECT_EQ(sched.ledger().charge_count(), 0u);
  for (const WorkerId w : kWorkers) EXPECT_EQ(sched.ledger().backlog(w), 0);
}

}  // namespace
}  // namespace hpcwhisk::sched
