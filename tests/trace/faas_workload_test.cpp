#include "hpcwhisk/trace/faas_workload.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::trace {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

TEST(FaasLoad, ConstantRateIssuesExpectedCount) {
  Simulation sim;
  whisk::FunctionRegistry registry;
  const auto names = register_sleep_functions(registry, 4);
  std::size_t calls = 0;
  FaasLoadGenerator gen{sim,
                        {.rate_qps = 10.0, .functions = names},
                        [&calls](const std::string&) { ++calls; },
                        Rng{1}};
  gen.start(SimTime::minutes(1));
  sim.run_until(SimTime::minutes(2));
  EXPECT_EQ(calls, 600u);  // 10 QPS for 60 s: t = 0.1s .. 60.0s inclusive
  EXPECT_EQ(gen.issued(), calls);
}

TEST(FaasLoad, RoundRobinCoversAllFunctions) {
  Simulation sim;
  whisk::FunctionRegistry registry;
  const auto names = register_sleep_functions(registry, 5);
  std::map<std::string, int> counts;
  FaasLoadGenerator gen{sim,
                        {.rate_qps = 5.0, .functions = names},
                        [&counts](const std::string& fn) { ++counts[fn]; },
                        Rng{2}};
  gen.start(SimTime::seconds(100));
  sim.run_until(SimTime::minutes(3));
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [fn, n] : counts) EXPECT_NEAR(n, 100, 2);
}

TEST(FaasLoad, PoissonMeanRateMatches) {
  Simulation sim;
  whisk::FunctionRegistry registry;
  const auto names = register_sleep_functions(registry, 1);
  std::size_t calls = 0;
  FaasLoadGenerator gen{
      sim,
      {.rate_qps = 20.0, .poisson = true, .functions = names},
      [&calls](const std::string&) { ++calls; },
      Rng{3}};
  gen.start(SimTime::minutes(10));
  sim.run_until(SimTime::minutes(11));
  EXPECT_NEAR(static_cast<double>(calls), 20.0 * 600, 300);
}

TEST(FaasLoad, StopsAtDeadline) {
  Simulation sim;
  whisk::FunctionRegistry registry;
  const auto names = register_sleep_functions(registry, 1);
  std::vector<double> call_times;
  FaasLoadGenerator gen{sim,
                        {.rate_qps = 2.0, .functions = names},
                        [&call_times, &sim](const std::string&) {
                          call_times.push_back(sim.now().to_seconds());
                        },
                        Rng{4}};
  gen.start(SimTime::seconds(10));
  sim.run_until(SimTime::minutes(1));
  ASSERT_FALSE(call_times.empty());
  EXPECT_LE(call_times.back(), 10.0);
}

TEST(FaasLoad, RejectsBadConfig) {
  Simulation sim;
  whisk::FunctionRegistry registry;
  const auto names = register_sleep_functions(registry, 1);
  EXPECT_THROW(FaasLoadGenerator(sim, {.rate_qps = 0.0, .functions = names},
                                 [](const std::string&) {}, Rng{5}),
               std::invalid_argument);
  EXPECT_THROW(FaasLoadGenerator(sim, {.rate_qps = 1.0, .functions = {}},
                                 [](const std::string&) {}, Rng{5}),
               std::invalid_argument);
  EXPECT_THROW(FaasLoadGenerator(sim, {.rate_qps = 1.0, .functions = names},
                                 nullptr, Rng{5}),
               std::invalid_argument);
}

TEST(SleepFunctions, RegisteredWithPaperParameters) {
  whisk::FunctionRegistry registry;
  const auto names = register_sleep_functions(registry, 100);
  EXPECT_EQ(names.size(), 100u);
  EXPECT_EQ(registry.size(), 100u);
  // The paper's responsiveness functions: 10 ms fixed, distinct names so
  // the hash router spreads them over invokers.
  sim::Rng rng{1};
  const auto& spec = registry.at(names.front());
  EXPECT_EQ(spec.duration(rng), SimTime::millis(10));
  EXPECT_NE(names[0], names[1]);
}

TEST(AzureMixFunctions, DurationsSpanOrdersOfMagnitude) {
  whisk::FunctionRegistry registry;
  sim::Rng rng{6};
  const auto names = register_azure_mix_functions(registry, 200, rng);
  EXPECT_EQ(names.size(), 200u);
  // Sample one duration per function; the mix must include sub-second
  // and multi-second functions (Azure: 50% < 3 s, 90% < 60 s).
  sim::Rng sample_rng{7};
  std::vector<double> durations;
  for (const auto& name : names)
    durations.push_back(registry.at(name).duration(sample_rng).to_seconds());
  std::sort(durations.begin(), durations.end());
  EXPECT_LT(durations.front(), 1.0);
  EXPECT_GT(durations.back(), 3.0);
}

}  // namespace
}  // namespace hpcwhisk::trace
