#include "hpcwhisk/trace/hpc_workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "hpcwhisk/core/system.hpp"

namespace hpcwhisk::trace {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  slurm::Slurmctld ctld;
  Fixture(std::uint32_t nodes = 64)
      : ctld{sim, {.node_count = nodes}, core::default_partitions()} {}
};

TEST(HpcWorkload, DrawnJobsAreValid) {
  Fixture f;
  HpcWorkloadGenerator gen{f.sim, f.ctld, {}, Rng{1}};
  for (int i = 0; i < 2000; ++i) {
    const TraceJob job = gen.draw_job();
    EXPECT_GE(job.num_nodes, 1u);
    EXPECT_LE(job.num_nodes, 240u);
    EXPECT_GE(job.time_limit, SimTime::minutes(2));
    if (job.runtime != SimTime::max()) {
      EXPECT_LE(job.runtime, job.time_limit);
      EXPECT_GE(job.runtime, SimTime::seconds(30));
    }
  }
}

TEST(HpcWorkload, LimitDistributionMatchesFig2) {
  Fixture f;
  HpcWorkloadGenerator gen{f.sim, f.ctld, {}, Rng{2}};
  std::vector<double> limits;
  for (int i = 0; i < 20000; ++i)
    limits.push_back(gen.draw_job().time_limit.to_minutes());
  std::sort(limits.begin(), limits.end());
  const double median = limits[limits.size() / 2];
  EXPECT_NEAR(median, 60.0, 6.0);  // paper: median declared limit 60 min
  // 95% declare at least 15 minutes.
  const auto below15 = std::lower_bound(limits.begin(), limits.end(), 15.0) -
                       limits.begin();
  EXPECT_NEAR(static_cast<double>(below15) / limits.size(), 0.05, 0.02);
}

TEST(HpcWorkload, CalibratedModeKeepsShallowBacklog) {
  Fixture f;
  HpcWorkloadGenerator gen{f.sim, f.ctld, {}, Rng{3}};
  gen.start();
  f.sim.run_until(SimTime::hours(2));
  // The backlog target bounds pending jobs.
  EXPECT_LE(f.ctld.pending_count("hpc"), 30u + 5u);
  EXPECT_GT(gen.submitted_jobs().size(), 10u);
}

TEST(HpcWorkload, SaturatedModeFillsCluster) {
  Fixture f;
  HpcWorkloadGenerator::Config cfg;
  cfg.mode = HpcWorkloadGenerator::Mode::kSaturated;
  cfg.backlog_target = 100;
  HpcWorkloadGenerator gen{f.sim, f.ctld, cfg, Rng{4}};
  gen.start();
  f.sim.run_until(SimTime::hours(2));
  // Near-zero idle under saturation.
  EXPECT_LE(f.ctld.idle_node_count(), 8u);
}

TEST(HpcWorkload, StopHaltsSubmissions) {
  Fixture f;
  HpcWorkloadGenerator gen{f.sim, f.ctld, {}, Rng{5}};
  gen.start();
  f.sim.run_until(SimTime::minutes(30));
  gen.stop();
  const std::size_t submitted = gen.submitted_jobs().size();
  f.sim.run_until(SimTime::hours(2));
  EXPECT_EQ(gen.submitted_jobs().size(), submitted);
}

TEST(HpcWorkload, DeterministicForSeed) {
  Fixture f1, f2;
  HpcWorkloadGenerator a{f1.sim, f1.ctld, {}, Rng{7}};
  HpcWorkloadGenerator b{f2.sim, f2.ctld, {}, Rng{7}};
  for (int i = 0; i < 100; ++i) {
    const TraceJob ja = a.draw_job();
    const TraceJob jb = b.draw_job();
    EXPECT_EQ(ja.num_nodes, jb.num_nodes);
    EXPECT_EQ(ja.time_limit, jb.time_limit);
    EXPECT_EQ(ja.runtime, jb.runtime);
  }
}

TEST(HpcWorkload, TraceSaveLoadRoundTrips) {
  Fixture f;
  HpcWorkloadGenerator gen{f.sim, f.ctld, {}, Rng{8}};
  std::vector<TraceJob> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back(gen.draw_job());
  const auto path =
      (std::filesystem::temp_directory_path() / "hw_trace_test.csv").string();
  save_trace(path, jobs);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].num_nodes, jobs[i].num_nodes);
    EXPECT_NEAR(loaded[i].time_limit.to_seconds(),
                jobs[i].time_limit.to_seconds(), 1e-3);
    if (jobs[i].runtime == SimTime::max()) {
      EXPECT_EQ(loaded[i].runtime, SimTime::max());
    } else {
      EXPECT_NEAR(loaded[i].runtime.to_seconds(), jobs[i].runtime.to_seconds(),
                  1e-3);
    }
  }
  std::remove(path.c_str());
}

TEST(HpcWorkload, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace hpcwhisk::trace
