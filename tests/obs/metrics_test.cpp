// MetricsRegistry unit contract: instrument identity, collector
// snapshots, log-bucketed quantile error bounds, and the deterministic
// JSONL export.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "hpcwhisk/obs/export.hpp"
#include "hpcwhisk/obs/metrics.hpp"

namespace hpcwhisk::obs {
namespace {

TEST(MetricsRegistry, InstrumentsAreStableByName) {
  MetricsRegistry m;
  Counter& c = m.counter("x");
  c.add();
  c.add(4);
  EXPECT_EQ(m.counter("x").value(), 5u);
  m.gauge("g").set(2.5);
  EXPECT_EQ(m.gauge("g").value(), 2.5);
  EXPECT_EQ(m.instrument_count(), 2u);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  MetricsRegistry m;
  m.counter("x");
  EXPECT_THROW(m.gauge("x"), std::logic_error);
  EXPECT_THROW(m.histogram("x"), std::logic_error);
}

TEST(MetricsRegistry, CollectorsSnapshotExternalCounters) {
  MetricsRegistry m;
  std::uint64_t external = 3;
  m.add_collector([&external](MetricsRegistry& reg) {
    reg.counter("ext").set(external);
  });
  m.collect();
  EXPECT_EQ(m.counter("ext").value(), 3u);
  external = 10;
  m.collect();
  // set() semantics: collect() is idempotent, never additive.
  EXPECT_EQ(m.counter("ext").value(), 10u);
}

TEST(Histogram, QuantilesWithinLogBucketError) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.avg(), 500.5, 1e-9);
  // 8 sub-buckets per octave => <= 12.5 % relative error.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 950.0 * 0.13);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.13);
  // Extreme quantiles stay inside the exact observed range and within
  // bucket resolution of the true extremes.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(0.0), 1.0 * 1.13);
  EXPECT_LE(h.quantile(1.0), 1000.0);
  EXPECT_GE(h.quantile(1.0), 1000.0 * 0.87);
}

TEST(Histogram, SubUnitValuesLandInFirstBucket) {
  Histogram h;
  h.observe(0.25);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.25);
  // Bucket resolution is lost below 1, but clamping keeps the estimate
  // inside the observed range.
  EXPECT_GE(h.quantile(0.5), 0.25);
  EXPECT_LE(h.quantile(0.5), 0.5);
}

TEST(Histogram, ExactPowerOfTwoEdges) {
  // 2^k is the *first* sub-bucket of octave k (frexp gives mant = 0.5),
  // and nextafter(2^k, 0) the *last* sub-bucket of octave k-1: exact
  // edges must not straddle or double-count.
  for (const double edge : {2.0, 4.0, 1024.0, 1048576.0}) {
    Histogram at_edge;
    at_edge.observe(edge);
    EXPECT_EQ(at_edge.quantile(0.5), edge) << edge;

    Histogram below;
    const double just_below = std::nextafter(edge, 0.0);
    below.observe(just_below);
    // Single sample: clamping to [min, max] recovers it exactly even
    // though the bucket midpoint differs.
    EXPECT_EQ(below.quantile(0.5), just_below) << edge;

    // Both land in buckets, never lost: counts are conserved.
    Histogram both;
    both.observe(edge);
    both.observe(just_below);
    EXPECT_EQ(both.count(), 2u);
    EXPECT_EQ(both.min(), just_below);
    EXPECT_EQ(both.max(), edge);
  }
}

TEST(Histogram, P99WithOneSampleIsTheSample) {
  Histogram h;
  h.observe(37.5);
  // Nearest-rank with count 1: every quantile is observation #1, and
  // min/max clamping makes the estimate exact.
  EXPECT_EQ(h.quantile(0.0), 37.5);
  EXPECT_EQ(h.quantile(0.5), 37.5);
  EXPECT_EQ(h.quantile(0.99), 37.5);
  EXPECT_EQ(h.quantile(1.0), 37.5);
  EXPECT_EQ(h.min(), 37.5);
  EXPECT_EQ(h.max(), 37.5);
  EXPECT_EQ(h.avg(), 37.5);
}

TEST(Histogram, SaturatingValuesClampToLastOctave) {
  // Values beyond the 60-octave range saturate into the last bucket
  // instead of indexing out of bounds; quantiles stay inside the exact
  // observed range.
  Histogram h;
  h.observe(1e300);
  h.observe(1e301);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1e301);
  EXPECT_GE(h.quantile(0.99), 1e300);
  EXPECT_LE(h.quantile(0.99), 1e301);

  // Non-finite and negative observations land in the first bucket and
  // never corrupt the count.
  Histogram odd;
  odd.observe(-5.0);
  odd.observe(0.0);
  odd.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(odd.count(), 3u);
  EXPECT_LE(odd.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, JsonlIsNameOrderedAndTyped) {
  MetricsRegistry m;
  m.counter("z.count").add(2);
  m.gauge("a.gauge").set(1.5);
  m.histogram("m.hist").observe(8.0);
  std::ostringstream os;
  m.write_jsonl(os);
  const std::string out = os.str();

  const auto a = out.find("\"a.gauge\"");
  const auto mh = out.find("\"m.hist\"");
  const auto z = out.find("\"z.count\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(mh, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, mh);
  EXPECT_LT(mh, z);
  EXPECT_NE(out.find("{\"name\":\"z.count\",\"type\":\"counter\",\"value\":2}"),
            std::string::npos);
  EXPECT_NE(out.find("\"type\":\"histogram\",\"count\":1"), std::string::npos);

  // Each line is a balanced JSON object.
  std::istringstream lines{out};
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 3u);
}

TEST(MetricsRegistry, ExportPrependsRunInfoLine) {
  MetricsRegistry m;
  m.counter("c").add();
  ExportInfo info;
  info.run = "unit";
  info.seed = 4;
  std::ostringstream os;
  write_metrics_jsonl(os, m, info);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"name\":\"_run\",\"type\":\"info\",\"run\":\"unit\","
                      "\"seed\":4,\"instruments\":1}\n",
                      0),
            0u);
  EXPECT_NE(out.find("{\"name\":\"c\",\"type\":\"counter\",\"value\":1}"),
            std::string::npos);
}

}  // namespace
}  // namespace hpcwhisk::obs
