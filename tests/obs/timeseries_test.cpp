// TimeSeriesRecorder / Series unit contract: bounded memory through
// pairwise downsampling (count-weighted mean, min-of-mins, max-of-maxes,
// stride doubling), owner-driven sweeps, and the DecisionLog's bounded
// drop-counting buffer.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "hpcwhisk/obs/decisions.hpp"
#include "hpcwhisk/obs/export.hpp"
#include "hpcwhisk/obs/timeseries.hpp"

namespace hpcwhisk::obs {
namespace {

sim::SimTime at_s(double s) { return sim::SimTime::seconds(s); }

TEST(Series, RawPointsKeptBelowCapacity) {
  Series s{"sig", 8};
  for (int i = 0; i < 8; ++i) s.append(at_s(i), static_cast<double>(i));
  ASSERT_EQ(s.samples().size(), 8u);
  EXPECT_EQ(s.stride(), 1u);
  EXPECT_EQ(s.appended(), 8u);
  for (int i = 0; i < 8; ++i) {
    const Sample& p = s.samples()[static_cast<std::size_t>(i)];
    EXPECT_EQ(p.at, at_s(i));
    EXPECT_EQ(p.mean, i);
    EXPECT_EQ(p.min, i);
    EXPECT_EQ(p.max, i);
    EXPECT_EQ(p.count, 1u);
  }
  EXPECT_EQ(s.last(), 7.0);
}

TEST(Series, OverflowMergesPairwiseAndDoublesStride) {
  Series s{"sig", 4};
  const double values[] = {1, 2, 3, 4, 5};
  for (int i = 0; i < 5; ++i) s.append(at_s(i), values[i]);
  // The 5th point overflowed capacity 4: (1,2)(3,4)(5) remain.
  ASSERT_EQ(s.samples().size(), 3u);
  EXPECT_EQ(s.stride(), 2u);
  const Sample& a = s.samples()[0];
  EXPECT_EQ(a.at, at_s(0));  // merged window keeps its start time
  EXPECT_EQ(a.mean, 1.5);
  EXPECT_EQ(a.min, 1.0);
  EXPECT_EQ(a.max, 2.0);
  EXPECT_EQ(a.count, 2u);
  const Sample& b = s.samples()[1];
  EXPECT_EQ(b.mean, 3.5);
  // The odd tail survives un-merged and keeps filling to the new stride.
  const Sample& c = s.samples()[2];
  EXPECT_EQ(c.count, 1u);
  s.append(at_s(5), 7.0);
  ASSERT_EQ(s.samples().size(), 3u);
  EXPECT_EQ(s.samples()[2].count, 2u);
  EXPECT_EQ(s.samples()[2].mean, 6.0);
  EXPECT_EQ(s.samples()[2].min, 5.0);
  EXPECT_EQ(s.samples()[2].max, 7.0);
}

TEST(Series, LongRunStaysBoundedAndConservesMass) {
  Series s{"sig", 8};
  const int n = 10'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>((i * 37) % 101);
    sum += v;
    s.append(at_s(i), v);
  }
  EXPECT_LE(s.samples().size(), 8u);
  EXPECT_EQ(s.appended(), static_cast<std::uint64_t>(n));
  // Stride is the doubling cascade's power of two.
  EXPECT_EQ(s.stride() & (s.stride() - 1), 0u);
  // Every raw observation is folded into exactly one stored sample, and
  // the count-weighted mean over the stored samples is the exact mean.
  std::uint64_t total = 0;
  double weighted = 0;
  for (const Sample& p : s.samples()) {
    total += p.count;
    weighted += p.mean * p.count;
    EXPECT_LE(p.min, p.mean);
    EXPECT_GE(p.max, p.mean);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(n));
  EXPECT_NEAR(weighted / static_cast<double>(n), sum / n, 1e-6);
}

TEST(Series, MinimumCapacityIsTwo) {
  Series s{"sig", 0};  // clamped to 2
  for (int i = 0; i < 100; ++i) s.append(at_s(i), static_cast<double>(i));
  EXPECT_LE(s.samples().size(), 2u);
  EXPECT_EQ(s.appended(), 100u);
}

TEST(TimeSeriesRecorder, SweepPollsOnlySampledSeries) {
  TimeSeriesRecorder rec{16};
  double polled_value = 1.0;
  const auto polled =
      rec.add_sampled("polled", [&polled_value] { return polled_value; });
  const auto manual = rec.add_series("manual");
  (void)polled;

  rec.sample_all(at_s(0));
  polled_value = 5.0;
  rec.sample_all(at_s(10));
  EXPECT_EQ(rec.sweeps(), 2u);

  const Series* p = rec.find("polled");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->samples().size(), 2u);
  EXPECT_EQ(p->samples()[0].mean, 1.0);
  EXPECT_EQ(p->samples()[1].mean, 5.0);
  EXPECT_EQ(p->samples()[1].at, at_s(10));

  // The manual series is untouched by sweeps and fed directly.
  const Series* m = rec.find("manual");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->samples().empty());
  rec.append(manual, at_s(3), 9.0);
  EXPECT_EQ(m->samples().size(), 1u);

  EXPECT_EQ(rec.find("nope"), nullptr);
  EXPECT_THROW(rec.append(99, at_s(0), 0.0), std::out_of_range);
}

TEST(TimeSeriesRecorder, JsonlExportRoundTrips) {
  TimeSeriesRecorder rec{4};
  const auto id = rec.add_series("x");
  for (int i = 0; i < 6; ++i) rec.append(id, at_s(i), static_cast<double>(i));
  std::ostringstream os;
  ExportInfo info;
  info.run = "test";
  write_timeseries_jsonl(os, rec, info);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"_run\""), std::string::npos);
  EXPECT_NE(out.find("\"x\""), std::string::npos);
  EXPECT_NE(out.find("\"stride\":2"), std::string::npos);
}

TEST(DecisionLog, BoundedBufferCountsDrops) {
  DecisionLog log{3};
  for (std::uint64_t i = 0; i < 5; ++i) {
    RouteDecision d;
    d.call = i;
    d.chosen = static_cast<std::uint32_t>(i);
    log.record(d);
  }
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  ASSERT_EQ(log.decisions().size(), 3u);
  // Oldest records win: the buffer keeps the head of the run.
  EXPECT_EQ(log.decisions().front().call, 0u);
  EXPECT_EQ(log.decisions().back().call, 2u);
}

TEST(DecisionLog, JsonlExportEmitsRunInfoAndNullRunnerUp) {
  DecisionLog log;
  RouteDecision d;
  d.call = 7;
  d.policy = "least-expected-work";
  d.function = "fn";
  d.chosen = 3;
  // runner_up stays kNone: exported as null, not a bogus worker id.
  log.record(d);
  std::ostringstream os;
  write_decisions_jsonl(os, log, {});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"_run\""), std::string::npos);
  EXPECT_NE(out.find("\"runner_up\":null"), std::string::npos);
  EXPECT_NE(out.find("least-expected-work"), std::string::npos);
}

}  // namespace
}  // namespace hpcwhisk::obs
