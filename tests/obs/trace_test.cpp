// TraceCollector unit contract: sequence numbers, causal chaining,
// bounded capacity with counted drops, the canonical FNV-1a digest, and
// the Perfetto trace_event export.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "hpcwhisk/obs/export.hpp"
#include "hpcwhisk/obs/trace.hpp"

namespace hpcwhisk::obs {
namespace {

using sim::SimTime;

TEST(TraceCollector, RecordsInOrderWithSequenceNumbers) {
  TraceCollector trace;
  const auto s0 =
      trace.record(Cat::kActivation, Phase::kAsyncBegin, "activation",
                   Track::kController, 0, 42, SimTime::seconds(1), 5.0, 6.0);
  const auto s1 = trace.record(Cat::kSched, Phase::kInstant, "sched_pass",
                               Track::kSlurmctld, 0, 1, SimTime::seconds(2));
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].corr, 42u);
  EXPECT_EQ(trace.events()[0].arg0, 5.0);
  EXPECT_EQ(trace.events()[0].arg1, 6.0);
  EXPECT_EQ(trace.events()[0].parent, kNoParent);
  EXPECT_STREQ(trace.events()[1].name, "sched_pass");
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceCollector, ChainsEventsPerCategoryAndCorrelation) {
  TraceCollector trace;
  const auto a0 =
      trace.record_chained(Cat::kActivation, Phase::kAsyncBegin, "activation",
                           Track::kController, 0, 7, SimTime::seconds(1));
  const auto a1 = trace.record_chained(Cat::kActivation, Phase::kInstant,
                                       "pull", Track::kInvoker, 3, 7,
                                       SimTime::seconds(2));
  // Same corr, different category: an independent chain.
  const auto p0 =
      trace.record_chained(Cat::kPilot, Phase::kAsyncBegin, "pilot",
                           Track::kPilot, 7, 7, SimTime::seconds(3));
  const auto a2 =
      trace.record_chained(Cat::kActivation, Phase::kAsyncEnd, "activation",
                           Track::kController, 0, 7, SimTime::seconds(4));

  EXPECT_EQ(trace.events()[a0].parent, kNoParent);
  EXPECT_EQ(trace.events()[a1].parent, a0);
  EXPECT_EQ(trace.events()[p0].parent, kNoParent);
  EXPECT_EQ(trace.events()[a2].parent, a1);
  EXPECT_EQ(trace.chain_tail(Cat::kActivation, 7), a2);
  EXPECT_EQ(trace.chain_tail(Cat::kPilot, 7), p0);
  EXPECT_EQ(trace.chain_tail(Cat::kActivation, 8), kNoParent);
}

TEST(TraceCollector, DropsPastCapacityAndCounts) {
  TraceCollector trace{2};
  trace.record(Cat::kMark, Phase::kInstant, "a", Track::kController, 0, 0,
               SimTime::zero());
  trace.record(Cat::kMark, Phase::kInstant, "b", Track::kController, 0, 0,
               SimTime::zero());
  const auto dropped =
      trace.record_chained(Cat::kMark, Phase::kInstant, "c", Track::kController,
                           0, 0, SimTime::zero());
  EXPECT_EQ(dropped, kNoParent);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
  // A dropped chained event must not corrupt the chain tail.
  EXPECT_EQ(trace.chain_tail(Cat::kMark, 0), kNoParent);
}

TEST(TraceCollector, ClearResetsEventsAndChains) {
  TraceCollector trace;
  trace.record_chained(Cat::kActivation, Phase::kInstant, "x",
                       Track::kController, 0, 1, SimTime::seconds(1));
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.chain_tail(Cat::kActivation, 1), kNoParent);
  const auto seq =
      trace.record_chained(Cat::kActivation, Phase::kInstant, "y",
                           Track::kController, 0, 1, SimTime::seconds(2));
  EXPECT_EQ(trace.events()[seq].parent, kNoParent);
}

TEST(Fnv1a, MatchesOffsetBasisAndDiscriminates) {
  static_assert(fnv1a("") == 1469598103934665603ULL);
  EXPECT_EQ(fnv1a(""), 1469598103934665603ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("decision log"), fnv1a("decision log"));
}

TEST(PerfettoExport, TidMappingIsStable) {
  EXPECT_EQ(perfetto_tid(Track::kController, 0), 1u);
  EXPECT_EQ(perfetto_tid(Track::kSlurmctld, 0), 2u);
  EXPECT_EQ(perfetto_tid(Track::kChaos, 0), 3u);
  EXPECT_EQ(perfetto_tid(Track::kInvoker, 5), 105u);
  EXPECT_EQ(perfetto_tid(Track::kPilot, 7), 100007u);
}

TEST(PerfettoExport, EmitsStructurallyValidJson) {
  TraceCollector trace;
  trace.record_chained(Cat::kActivation, Phase::kAsyncBegin, "activation",
                       Track::kController, 0, 7, SimTime::seconds(1), 2.0);
  trace.record_chained(Cat::kActivation, Phase::kInstant, "pull",
                       Track::kInvoker, 3, 7, SimTime::seconds(2));
  trace.record_chained(Cat::kActivation, Phase::kAsyncEnd, "activation",
                       Track::kController, 0, 7, SimTime::seconds(3));
  trace.record(Cat::kSched, Phase::kBegin, "drain", Track::kInvoker, 3, kNoCorr,
               SimTime::seconds(4));

  ExportInfo info;
  info.run = "unit";
  info.seed = 9;
  std::ostringstream os;
  write_perfetto_json(os, trace, info);
  const std::string doc = os.str();

  EXPECT_TRUE(looks_like_perfetto_json(doc));
  // Async phases carry the correlation id; instants carry thread scope.
  EXPECT_NE(doc.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(doc.find("\"id\":7"), std::string::npos);
  EXPECT_NE(doc.find("\"s\":\"t\""), std::string::npos);
  // Thread metadata for every row that appeared.
  EXPECT_NE(doc.find("\"name\":\"controller\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"invoker-3\""), std::string::npos);
  // Causal parent links survive the export.
  EXPECT_NE(doc.find("\"parent\":0"), std::string::npos);
  // Run info lands in otherData.
  EXPECT_NE(doc.find("\"run\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 9"), std::string::npos);
  // kNoCorr suppresses the corr arg entirely.
  EXPECT_EQ(doc.find("\"corr\":18446744073709551615"), std::string::npos);
}

TEST(PerfettoExport, ValidatorRejectsTruncatedDocuments) {
  TraceCollector trace;
  trace.record(Cat::kMark, Phase::kInstant, "m", Track::kController, 0, 0,
               SimTime::zero());
  std::ostringstream os;
  write_perfetto_json(os, trace);
  const std::string doc = os.str();
  EXPECT_TRUE(looks_like_perfetto_json(doc));
  EXPECT_FALSE(looks_like_perfetto_json(doc.substr(0, doc.size() / 2)));
  EXPECT_FALSE(looks_like_perfetto_json("{\"traceEvents\": []}"));
}

}  // namespace
}  // namespace hpcwhisk::obs
