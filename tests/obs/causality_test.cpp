// End-to-end trace causality: a small traced system under FaaS load
// (optionally with chaos faults) must produce activation chains that
// walk monotonically back to their submission root, fault windows that
// overlap the disturbances they caused, metrics that mirror the
// components' own ledgers — and tracing must not change a single
// decision relative to the untraced run.

#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "hpcwhisk/analysis/conservation.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/fault/chaos_engine.hpp"
#include "hpcwhisk/obs/observability.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

core::HpcWhiskSystem::Config small_system(std::uint32_t nodes,
                                          std::uint64_t seed) {
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = nodes;
  cfg.slurm.min_pass_gap = SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = 3;
  return cfg;
}

/// Light sleep-function load over [2min, 20min), drained past every
/// client timeout — the scaffold tests/fault/chaos_engine_test.cpp uses.
void run_with_load(Simulation& simulation, core::HpcWhiskSystem& system,
                   std::uint64_t load_seed,
                   SimTime duration = SimTime::seconds(2)) {
  const auto functions =
      trace::register_sleep_functions(system.functions(), 8, duration);
  system.start();
  simulation.run_until(SimTime::minutes(2));
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 4.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{load_seed}};
  faas.start(SimTime::minutes(20));
  simulation.run_until(SimTime::minutes(30));
}

/// Traced system bundle; declaration order makes the sink outlive the
/// system (pilot teardown records drain events from destructors).
struct TracedRun {
  std::unique_ptr<obs::Observability> obs =
      std::make_unique<obs::Observability>();
  std::unique_ptr<Simulation> simulation = std::make_unique<Simulation>();
  std::unique_ptr<core::HpcWhiskSystem> system;

  explicit TracedRun(core::HpcWhiskSystem::Config cfg) {
    cfg.obs = obs.get();
    system = std::make_unique<core::HpcWhiskSystem>(*simulation, cfg);
  }
};

/// Walks the causal chain for (cat, corr) tail-first via parent links.
std::vector<const obs::TraceEvent*> chain_of(const obs::TraceCollector& trace,
                                             obs::Cat cat,
                                             std::uint64_t corr) {
  std::vector<const obs::TraceEvent*> out;
  for (std::uint32_t seq = trace.chain_tail(cat, corr);
       seq != obs::kNoParent; seq = trace.events()[seq].parent) {
    out.push_back(&trace.events()[seq]);
  }
  return out;
}

TEST(Causality, TerminalActivationsChainBackToSubmission) {
  TracedRun run{small_system(4, 7)};
  run_with_load(*run.simulation, *run.system, 9);

  const obs::TraceCollector& trace = run.obs->trace;
  EXPECT_EQ(trace.dropped(), 0u);
  ASSERT_GT(trace.size(), 0u);

  std::size_t checked = 0;
  for (const whisk::ActivationRecord& rec :
       run.system->controller().activations()) {
    if (rec.state != whisk::ActivationState::kCompleted) continue;
    ++checked;
    // Satellite 1: a completed activation has both start stamps, in order.
    ASSERT_NE(rec.first_start_time, SimTime::zero());
    EXPECT_LE(rec.first_start_time, rec.start_time);
    EXPECT_LE(rec.submit_time, rec.first_start_time);

    const auto chain = chain_of(trace, obs::Cat::kActivation, rec.id);
    ASSERT_GE(chain.size(), 2u) << "activation " << rec.id;
    // Tail-first walk: the newest event is the terminal async end...
    EXPECT_EQ(std::string_view{chain.front()->name}, "activation");
    EXPECT_EQ(chain.front()->phase, obs::Phase::kAsyncEnd);
    // ...and the root is the submission-time async begin.
    EXPECT_EQ(std::string_view{chain.back()->name}, "activation");
    EXPECT_EQ(chain.back()->phase, obs::Phase::kAsyncBegin);
    EXPECT_EQ(chain.back()->at, rec.submit_time);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      EXPECT_EQ(chain[i]->corr, rec.id);
      // Monotonic: every event is at or after its causal parent.
      EXPECT_GE(chain[i]->at, chain[i + 1]->at) << "activation " << rec.id;
    }
  }
  EXPECT_GT(checked, 100u) << "load must complete activations";
}

TEST(Causality, FaultWindowOverlapsDisturbedActivations) {
  auto cfg = small_system(4, 11);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(5);
  ev.kind = fault::FaultKind::kInvokerStall;
  ev.stall = SimTime::seconds(30);  // > 3 missed heartbeats at 2 s
  cfg.faults.add(ev);
  TracedRun run{cfg};
  run_with_load(*run.simulation, *run.system, 13);
  ASSERT_EQ(run.system->chaos()->counters().applied, 1u);
  ASSERT_GE(run.system->controller().counters().unresponsive_detected, 1u);

  const obs::TraceCollector& trace = run.obs->trace;
  // The injection instant carries the disturbance window in arg0
  // (seconds): [at, at + stall] is when the invoker is unresponsive.
  const obs::TraceEvent* injection = nullptr;
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.cat == obs::Cat::kFault &&
        std::string_view{e.name} != "recovered" &&
        std::string_view{e.name} != "fault_skipped" &&
        e.track_kind == obs::Track::kChaos) {
      injection = &e;
      break;
    }
  }
  ASSERT_NE(injection, nullptr) << "chaos must trace its injection";
  EXPECT_EQ(injection->at, ev.at);
  const SimTime window_end =
      injection->at + SimTime::seconds(injection->arg0);
  EXPECT_EQ(window_end, ev.at + ev.stall);

  // The watchdog detection the stall provoked must fall inside the
  // fault's window (detection lags by at most the heartbeat deadline).
  const SimTime slack = SimTime::seconds(10);
  bool overlapped = false;
  for (const obs::TraceEvent& e : trace.events()) {
    if (std::string_view{e.name} != "invoker_unresponsive") continue;
    if (e.at >= injection->at && e.at <= window_end + slack) {
      overlapped = true;
      break;
    }
  }
  EXPECT_TRUE(overlapped)
      << "no unresponsive detection inside the stall window";
}

TEST(Causality, TracingChangesNoDecision) {
  // Same seeded scenario twice: with and without the sink. Every
  // behavioral ledger must match exactly.
  auto traced_cfg = small_system(4, 17);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(6);
  ev.kind = fault::FaultKind::kInvokerCrash;
  traced_cfg.faults.add(ev);

  TracedRun traced{traced_cfg};
  run_with_load(*traced.simulation, *traced.system, 19);

  Simulation plain_sim;
  auto plain_cfg = small_system(4, 17);
  plain_cfg.faults.add(ev);
  core::HpcWhiskSystem plain{plain_sim, plain_cfg};
  run_with_load(plain_sim, plain, 19);

  EXPECT_EQ(traced.simulation->executed_events(),
            plain_sim.executed_events());
  const auto& tc = traced.system->controller().counters();
  const auto& pc = plain.controller().counters();
  EXPECT_EQ(tc.submitted, pc.submitted);
  EXPECT_EQ(tc.completed, pc.completed);
  EXPECT_EQ(tc.failed, pc.failed);
  EXPECT_EQ(tc.timed_out, pc.timed_out);
  EXPECT_EQ(tc.requeued, pc.requeued);
  EXPECT_EQ(traced.system->slurm().counters().sched_passes,
            plain.slurm().counters().sched_passes);
  EXPECT_EQ(traced.system->manager().counters().started,
            plain.manager().counters().started);
}

TEST(Causality, MetricsMirrorComponentLedgers) {
  TracedRun run{small_system(4, 23)};
  analysis::ConservationAudit audit{run.system->controller(), run.obs.get()};
  run_with_load(*run.simulation, *run.system, 29);

  run.obs->metrics.collect();
  obs::MetricsRegistry& m = run.obs->metrics;
  const auto& cc = run.system->controller().counters();
  EXPECT_EQ(m.counter("whisk.controller.submitted").value(), cc.submitted);
  EXPECT_EQ(m.counter("whisk.controller.completed").value(), cc.completed);
  EXPECT_EQ(m.counter("slurm.sched_passes").value(),
            run.system->slurm().counters().sched_passes);
  EXPECT_EQ(m.counter("pilot.started").value(),
            run.system->manager().counters().started);
  // Every non-503 terminal transition observed a response time.
  EXPECT_EQ(m.histogram("whisk.activation.response_us").count(),
            cc.completed + cc.failed + cc.timed_out);
  EXPECT_GT(m.histogram("whisk.activation.queue_wait_us").count(), 0u);

  // A clean run: the audit holds and traces no violation instants.
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
  for (const obs::TraceEvent& e : run.obs->trace.events())
    EXPECT_NE(e.cat, obs::Cat::kAudit);
  EXPECT_EQ(m.counter("audit.violations").value(), 0u);
}

}  // namespace
}  // namespace hpcwhisk
