#include "hpcwhisk/sebs/kernels.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hpcwhisk::sebs {
namespace {

Graph path_graph(std::size_t n) {
  // 0 -> 1 -> 2 -> ... -> n-1
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<VertexId> targets;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    targets.push_back(static_cast<VertexId>(v + 1));
    offsets[v + 1] = offsets[v] + 1;
  }
  offsets[n] = targets.size();
  return Graph{std::move(offsets), std::move(targets)};
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto dist = bfs(g, 0);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  const Graph g = path_graph(5);
  const auto dist = bfs(g, 2);  // vertices 0,1 unreachable from 2
  EXPECT_EQ(dist[0], kUnreachable);
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[4], 2u);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(bfs(g, 7), std::out_of_range);
}

TEST(Bfs, RandomGraphDistancesAreConsistent) {
  const Graph g = make_uniform_graph(2000, 4.0, 5);
  const auto dist = bfs(g, 0);
  // Triangle-ish inequality: a neighbor's distance differs by at most 1
  // going forward.
  for (VertexId u = 0; u < 2000; ++u) {
    if (dist[u] == kUnreachable) continue;
    for (const VertexId* v = g.begin(u); v != g.end(u); ++v) {
      ASSERT_NE(dist[*v], kUnreachable);
      EXPECT_LE(dist[*v], dist[u] + 1);
    }
  }
}

TEST(DisjointSets, UniteAndFind) {
  DisjointSets dsu{5};
  EXPECT_EQ(dsu.set_count(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(1, 0));  // already joined
  EXPECT_EQ(dsu.set_count(), 3u);
  EXPECT_EQ(dsu.find(0), dsu.find(1));
  EXPECT_NE(dsu.find(0), dsu.find(2));
  EXPECT_TRUE(dsu.unite(0, 2));
  EXPECT_EQ(dsu.find(3), dsu.find(1));
}

TEST(Mst, TriangleChoosesTwoLightest) {
  std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {0, 2, 10}};
  const auto result = mst(3, edges);
  EXPECT_EQ(result.total_weight, 3u);
  EXPECT_EQ(result.edges_used, 2u);
  EXPECT_EQ(result.components, 1u);
}

TEST(Mst, DisconnectedGraphReportsComponents) {
  std::vector<WeightedEdge> edges{{0, 1, 1}, {2, 3, 1}};
  const auto result = mst(4, edges);
  EXPECT_EQ(result.edges_used, 2u);
  EXPECT_EQ(result.components, 2u);
}

TEST(Mst, GeneratedGraphIsSpanned) {
  const auto edges = make_weighted_edges(1000, 3.0, 100, 6);
  const auto result = mst(1000, edges);
  EXPECT_EQ(result.edges_used, 999u);  // backbone guarantees connectivity
  EXPECT_EQ(result.components, 1u);
  EXPECT_GT(result.total_weight, 0u);
}

TEST(Mst, WeightNeverExceedsAnySpanningTree) {
  // MST weight <= weight of the generator's backbone (a spanning tree).
  const std::size_t n = 500;
  const auto edges = make_weighted_edges(n, 5.0, 1000, 7);
  std::uint64_t backbone = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) backbone += edges[i].weight;
  const auto result = mst(n, edges);
  EXPECT_LE(result.total_weight, backbone);
}

TEST(Pagerank, SumsToOne) {
  const Graph g = make_preferential_graph(1000, 4, 8);
  const auto rank = pagerank(g, 0.85, 30);
  const double sum = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Pagerank, UniformOnSymmetricCycle) {
  // A directed cycle: every vertex must end with identical rank.
  const std::size_t n = 10;
  std::vector<std::uint64_t> offsets(n + 1);
  std::vector<VertexId> targets(n);
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v] = v;
    targets[v] = static_cast<VertexId>((v + 1) % n);
  }
  offsets[n] = n;
  const Graph g{std::move(offsets), std::move(targets)};
  const auto rank = pagerank(g, 0.85, 50);
  for (const double r : rank) EXPECT_NEAR(r, 0.1, 1e-9);
}

TEST(Pagerank, HubGainsRank) {
  // Star: all vertices point to 0; vertex 0 must dominate.
  const std::size_t n = 50;
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<VertexId> targets;
  for (std::size_t v = 1; v < n; ++v) targets.push_back(0);
  for (std::size_t v = 1; v <= n; ++v)
    offsets[v] = std::min<std::uint64_t>(targets.size(), v - 0);
  offsets[0] = 0;
  for (std::size_t v = 1; v <= n; ++v) offsets[v] = v - 1;
  offsets[n] = targets.size();
  const Graph g{std::move(offsets), std::move(targets)};
  const auto rank = pagerank(g, 0.85, 40);
  for (std::size_t v = 1; v < n; ++v) EXPECT_GT(rank[0], rank[v] * 5);
}

TEST(Pagerank, DanglingMassRedistributed) {
  const Graph g = path_graph(3);  // vertex 2 is dangling
  const auto rank = pagerank(g, 0.85, 50);
  const double sum = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Pagerank, RejectsBadParameters) {
  const Graph g = path_graph(3);
  EXPECT_THROW(pagerank(g, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(pagerank(g, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(pagerank(g, 0.85, 0), std::invalid_argument);
}

TEST(Graph, GeneratorsAreDeterministic) {
  const Graph a = make_uniform_graph(500, 4.0, 9);
  const Graph b = make_uniform_graph(500, 4.0, 9);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const Graph c = make_uniform_graph(500, 4.0, 10);
  // Different seed: overwhelmingly likely different edge count/content.
  EXPECT_TRUE(a.num_edges() != c.num_edges() ||
              !std::equal(a.begin(0), a.end(0), c.begin(0)));
}

TEST(Graph, CsrConsistencyValidated) {
  EXPECT_THROW(Graph({0, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(Graph({}, {}), std::invalid_argument);
}

TEST(Graph, PreferentialGraphHasSkewedDegrees) {
  const Graph g = make_preferential_graph(5000, 3, 11);
  std::size_t max_degree = 0;
  double total = 0;
  for (VertexId v = 0; v < 5000; ++v) {
    max_degree = std::max(max_degree, g.out_degree(v));
    total += static_cast<double>(g.out_degree(v));
  }
  const double avg = total / 5000.0;
  EXPECT_GT(static_cast<double>(max_degree), avg * 10);  // heavy hub
}

}  // namespace
}  // namespace hpcwhisk::sebs
