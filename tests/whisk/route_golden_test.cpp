// Golden decision-log pin for controller routing: a seeded closed-loop
// trace (5 invokers, 12 functions of mixed length, fake executors that
// pull, start, and complete work) drives Controller::submit under each
// legacy route mode, and every routing decision plus every terminal
// outcome folds into an FNV-1a hash captured before the src/sched
// subsystem existed. The data-driven modes (kLeastExpectedWork,
// kSjfAffinity) are deliberately NOT pinned to a constant — they are new
// in this PR — but they must be seed-deterministic, which the
// SameSeedTwice tests cover for all modes.
//
// If a legacy-mode hash changes, the sched integration leaked into the
// pre-existing routing paths — exactly the regression this test exists
// to catch.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hpcwhisk/obs/trace.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct TraceOutcome {
  std::uint64_t hash{0};
  std::size_t log_bytes{0};
  std::string head;
  Controller::Counters counters;
};

/// Runs the seeded closed-loop trace. All randomness flows through one
/// Rng in a fixed draw order, so the log is a pure function of
/// (mode, seed, controller behavior).
TraceOutcome run_trace(RouteMode mode, std::uint64_t seed) {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;

  // 12 functions: 8 short (10..45 ms) and 4 long (2..8 s), the
  // heterogeneous mix that makes routing decisions matter.
  std::vector<std::string> functions;
  for (int i = 0; i < 8; ++i) {
    const std::string name = "short-" + std::to_string(i);
    registry.put(fixed_duration_function(name, SimTime::millis(10 + 5 * i)));
    functions.push_back(name);
  }
  for (int i = 0; i < 4; ++i) {
    const std::string name = "long-" + std::to_string(i);
    registry.put(fixed_duration_function(name, SimTime::seconds(2 * (i + 1))));
    functions.push_back(name);
  }

  Controller::Config cfg;
  cfg.route_mode = mode;
  cfg.invoker_slots = 4;
  Controller controller{sim, broker, registry, cfg};

  constexpr int kInvokers = 5;
  for (int i = 0; i < kInvokers; ++i) controller.register_invoker();
  sim.every(SimTime::seconds(1), [&controller] {
    for (InvokerId id = 0; id < kInvokers; ++id) controller.heartbeat(id);
  });

  std::string log;
  log.reserve(1 << 15);
  Rng exec_rng{seed ^ 0xABCDULL};  // fixed durations never draw from it

  // Fake executors: each invoker polls its topic (fast lane first, like
  // the real pull loop) every 100 ms and completes up to 4 messages per
  // poll after the function's fixed duration.
  for (InvokerId inv = 0; inv < kInvokers; ++inv) {
    sim.every(SimTime::millis(100), [&, inv] {
      for (int k = 0; k < 4; ++k) {
        auto msg = broker.fast_lane().poll_one();
        if (!msg.has_value()) {
          msg = broker.topic(Controller::invoker_topic_name(inv)).poll_one();
        }
        if (!msg.has_value()) return;
        if (!controller.deliverable(msg->id)) continue;
        const ActivationId act = msg->id;
        controller.activation_started(act, inv, /*cold_start=*/false);
        const SimTime d = registry.at(msg->key).duration(exec_rng);
        sim.after(d, [&controller, act] {
          controller.activation_completed(act);
        });
      }
    });
  }

  // Open-loop arrivals: 400 submissions, exponential gaps (mean 60 ms),
  // zipf-ish function choice skewed toward the short fleet.
  Rng rng{seed};
  std::function<void(int)> arrive = [&](int remaining) {
    if (remaining == 0) return;
    const std::size_t fn_idx = static_cast<std::size_t>(
        rng.bernoulli(0.75) ? rng.uniform_int(0, 7) : rng.uniform_int(8, 11));
    const std::string& fn = functions[fn_idx];
    const SubmitResult res = controller.submit(fn);
    log += 'R';
    log += ' ';
    log += std::to_string(res.activation);
    log += ' ';
    log += fn;
    log += ' ';
    log += res.accepted
               ? std::to_string(controller.activation(res.activation).routed_to)
               : std::string{"503"};
    log += '\n';
    sim.after(SimTime::millis(static_cast<double>(rng.uniform_int(20, 100))),
              [&arrive, remaining] { arrive(remaining - 1); });
  };
  sim.at(SimTime::zero(), [&arrive] { arrive(400); });

  sim.run_until(SimTime::minutes(10));

  for (const ActivationRecord& rec : controller.activations()) {
    log += 'T';
    log += ' ';
    log += std::to_string(rec.id);
    log += ' ';
    log += to_string(rec.state);
    log += ' ';
    log += std::to_string(rec.end_time.ticks());
    log += '\n';
  }

  TraceOutcome out;
  out.hash = obs::fnv1a(log);
  out.log_bytes = log.size();
  out.head = log.substr(0, 300);
  out.counters = controller.counters();
  return out;
}

// Captured from the pre-sched controller (PR 6 baseline): the legacy
// modes' decisions must survive the sched subsystem byte-for-byte.
struct Golden {
  RouteMode mode;
  std::uint64_t hash;
  std::size_t log_bytes;
};

constexpr Golden kGolden[] = {
    {RouteMode::kHashProbing, 0x93ee1d3b7a7335dbULL, 15922},
    {RouteMode::kHashOnly, 0x3a2156de9940b517ULL, 15922},
    {RouteMode::kRoundRobin, 0x60e35b21d7eb1272ULL, 15922},
    {RouteMode::kLeastLoaded, 0xabb6bfb26bdeceddULL, 15922},
};

TEST(RouteGolden, LegacyModeDecisionLogsMatchBaseline) {
  for (const Golden& g : kGolden) {
    const TraceOutcome out = run_trace(g.mode, 42);
    EXPECT_EQ(out.hash, g.hash)
        << to_string(g.mode) << ": decision log diverged (" << out.log_bytes
        << " bytes, expected " << g.log_bytes << ").\nactual hash: 0x"
        << std::hex << out.hash << std::dec << "\nlog head:\n"
        << out.head;
    EXPECT_EQ(out.log_bytes, g.log_bytes) << to_string(g.mode);
    EXPECT_GT(out.counters.completed, 300u) << to_string(g.mode);
  }
}

TEST(RouteGolden, SameSeedTwiceIsIdentical) {
  for (const RouteMode mode :
       {RouteMode::kHashProbing, RouteMode::kLeastLoaded}) {
    const TraceOutcome a = run_trace(mode, 7);
    const TraceOutcome b = run_trace(mode, 7);
    EXPECT_EQ(a.hash, b.hash) << to_string(mode);
    EXPECT_EQ(a.log_bytes, b.log_bytes) << to_string(mode);
  }
}

}  // namespace
}  // namespace hpcwhisk::whisk
