// Load-balancer policies: OpenWhisk-style hash probing plus the ablation
// baselines.

#include <gtest/gtest.h>

#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;

  Fixture() {
    registry.put(fixed_duration_function("fn", SimTime::millis(10)));
    for (int i = 0; i < 8; ++i) {
      registry.put(fixed_duration_function("fn-" + std::to_string(i),
                                           SimTime::millis(10)));
    }
  }

  Controller make(RouteMode mode, std::uint32_t slots = 4) {
    Controller::Config cfg;
    cfg.route_mode = mode;
    cfg.invoker_slots = slots;
    return Controller{sim, broker, registry, cfg};
  }
};

std::size_t topic_size(Fixture& f, InvokerId id) {
  return f.broker.topic(Controller::invoker_topic_name(id)).size();
}

TEST(Routing, HashOnlyAlwaysSameInvoker) {
  Fixture f;
  auto controller = f.make(RouteMode::kHashOnly);
  for (int i = 0; i < 3; ++i) controller.register_invoker();
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(controller.submit("fn").accepted);
  int with_messages = 0;
  for (InvokerId id = 0; id < 3; ++id)
    if (topic_size(f, id) > 0) ++with_messages;
  EXPECT_EQ(with_messages, 1);
}

TEST(Routing, RoundRobinSpreadsEvenly) {
  Fixture f;
  auto controller = f.make(RouteMode::kRoundRobin);
  for (int i = 0; i < 3; ++i) controller.register_invoker();
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(controller.submit("fn").accepted);
  for (InvokerId id = 0; id < 3; ++id) EXPECT_EQ(topic_size(f, id), 4u);
}

TEST(Routing, LeastLoadedBalancesInFlight) {
  Fixture f;
  auto controller = f.make(RouteMode::kLeastLoaded);
  for (int i = 0; i < 2; ++i) controller.register_invoker();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(controller.submit("fn").accepted);
  EXPECT_EQ(controller.in_flight(0), 5u);
  EXPECT_EQ(controller.in_flight(1), 5u);
}

TEST(Routing, HashProbingSticksToHomeUntilSaturated) {
  Fixture f;
  auto controller = f.make(RouteMode::kHashProbing, /*slots=*/4);
  for (int i = 0; i < 3; ++i) controller.register_invoker();
  // First 4 calls: all on the home invoker. The 5th overflows elsewhere.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(controller.submit("fn").accepted);
  std::vector<std::size_t> sizes;
  for (InvokerId id = 0; id < 3; ++id) sizes.push_back(topic_size(f, id));
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[2], 4u);  // saturated home
  EXPECT_EQ(sizes[1], 1u);  // one overflow
  EXPECT_EQ(sizes[0], 0u);
}

TEST(Routing, HashProbingFallsBackWhenAllSaturated) {
  Fixture f;
  auto controller = f.make(RouteMode::kHashProbing, /*slots=*/2);
  for (int i = 0; i < 2; ++i) controller.register_invoker();
  // 2 invokers x 2 slots = 4; submit 6: last two go to the least loaded.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(controller.submit("fn").accepted);
  EXPECT_EQ(controller.in_flight(0) + controller.in_flight(1), 6u);
  EXPECT_LE(controller.in_flight(0), 3u);
  EXPECT_LE(controller.in_flight(1), 3u);
}

TEST(Routing, InFlightDropsOnCompletion) {
  Fixture f;
  auto controller = f.make(RouteMode::kHashProbing);
  const InvokerId id = controller.register_invoker();
  const auto result = controller.submit("fn");
  EXPECT_EQ(controller.in_flight(id), 1u);
  controller.activation_started(result.activation, id, false);
  controller.activation_completed(result.activation);
  EXPECT_EQ(controller.in_flight(id), 0u);
}

TEST(Routing, InFlightDropsOnTimeout) {
  Fixture f;
  auto controller = f.make(RouteMode::kHashProbing);
  const InvokerId id = controller.register_invoker();
  ASSERT_TRUE(controller.submit("fn").accepted);
  EXPECT_EQ(controller.in_flight(id), 1u);
  f.sim.run_until(SimTime::minutes(10));  // default timeout fires
  EXPECT_EQ(controller.in_flight(id), 0u);
}

TEST(Routing, DistinctFunctionsSpreadUnderHashing) {
  Fixture f;
  auto controller = f.make(RouteMode::kHashOnly);
  for (int i = 0; i < 4; ++i) controller.register_invoker();
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(controller.submit("fn-" + std::to_string(i)).accepted);
  // 8 distinct names over 4 invokers: at least 2 invokers see traffic.
  int with_messages = 0;
  for (InvokerId id = 0; id < 4; ++id)
    if (topic_size(f, id) > 0) ++with_messages;
  EXPECT_GE(with_messages, 2);
}

}  // namespace
}  // namespace hpcwhisk::whisk
