#include "hpcwhisk/whisk/function.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::whisk {
namespace {

TEST(FunctionRegistry, PutAndFind) {
  FunctionRegistry reg;
  reg.put(fixed_duration_function("a", sim::SimTime::millis(5)));
  EXPECT_NE(reg.find("a"), nullptr);
  EXPECT_EQ(reg.find("b"), nullptr);
  EXPECT_EQ(reg.at("a").name, "a");
  EXPECT_THROW(reg.at("b"), std::out_of_range);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(FunctionRegistry, PutReplaces) {
  FunctionRegistry reg;
  reg.put(fixed_duration_function("a", sim::SimTime::millis(5), 128));
  reg.put(fixed_duration_function("a", sim::SimTime::millis(5), 512));
  EXPECT_EQ(reg.at("a").memory_mb, 512);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(FunctionRegistry, RejectsInvalidSpecs) {
  FunctionRegistry reg;
  FunctionSpec unnamed;
  unnamed.duration = [](sim::Rng&) { return sim::SimTime::millis(1); };
  EXPECT_THROW(reg.put(unnamed), std::invalid_argument);
  FunctionSpec no_model;
  no_model.name = "x";
  EXPECT_THROW(reg.put(no_model), std::invalid_argument);
}

TEST(FunctionRegistry, NamesListsAll) {
  FunctionRegistry reg;
  reg.put(fixed_duration_function("a", sim::SimTime::millis(5)));
  reg.put(fixed_duration_function("b", sim::SimTime::millis(5)));
  EXPECT_EQ(reg.names().size(), 2u);
}

TEST(FunctionHash, DeterministicAndSpread) {
  EXPECT_EQ(function_hash("pagerank"), function_hash("pagerank"));
  EXPECT_NE(function_hash("pagerank"), function_hash("bfs"));
  // Distinct names should spread over buckets reasonably.
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 400; ++i)
    buckets[function_hash("fn-" + std::to_string(i)) % 4]++;
  for (const int b : buckets) EXPECT_GT(b, 50);
}

TEST(FixedDurationFunction, AlwaysSameDuration) {
  const auto spec = fixed_duration_function("f", sim::SimTime::millis(42));
  sim::Rng rng{1};
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(spec.duration(rng), sim::SimTime::millis(42));
  EXPECT_TRUE(spec.interruptible);
}

}  // namespace
}  // namespace hpcwhisk::whisk
