#include "hpcwhisk/whisk/controller.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::whisk {
namespace {

using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;
  Controller controller{sim, broker, registry};

  Fixture() {
    registry.put(fixed_duration_function("fn", SimTime::millis(10)));
    registry.put(fixed_duration_function("other", SimTime::millis(10)));
  }
};

TEST(Controller, Returns503WithNoInvokers) {
  Fixture f;
  const auto result = f.controller.submit("fn");
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(f.controller.counters().rejected_503, 1u);
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kRejected503);
  EXPECT_EQ(f.controller.last_503_time(), SimTime::zero());
}

TEST(Controller, RoutesToRegisteredInvoker) {
  Fixture f;
  const InvokerId id = f.controller.register_invoker();
  const auto result = f.controller.submit("fn");
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(f.broker.topic(Controller::invoker_topic_name(id)).size(), 1u);
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kQueued);
}

TEST(Controller, SameFunctionSameInvoker) {
  Fixture f;
  for (int i = 0; i < 4; ++i) f.controller.register_invoker();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.controller.submit("fn").accepted);
  // All ten messages must land on one topic (hash-based home invoker).
  int topics_with_messages = 0;
  for (InvokerId id = 0; id < 4; ++id) {
    if (!f.broker.topic(Controller::invoker_topic_name(id)).empty())
      ++topics_with_messages;
  }
  EXPECT_EQ(topics_with_messages, 1);
}

TEST(Controller, DrainingInvokerNotRouted) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  f.controller.begin_drain(a);
  const auto result = f.controller.submit("fn");
  EXPECT_FALSE(result.accepted);  // only invoker is draining -> 503
}

TEST(Controller, DrainMovesBacklogToFastLane) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(f.controller.submit("fn").accepted);
  EXPECT_EQ(f.broker.topic(Controller::invoker_topic_name(a)).size(), 5u);
  f.controller.begin_drain(a);
  EXPECT_TRUE(f.broker.topic(Controller::invoker_topic_name(a)).empty());
  EXPECT_EQ(f.broker.fast_lane().size(), 5u);
  EXPECT_EQ(f.controller.counters().requeued, 5u);
  // Requeues are recorded on the activation.
  const auto msg = f.broker.fast_lane().poll_one();
  ASSERT_TRUE(msg);
  EXPECT_EQ(f.controller.activation(msg->id).requeues, 1u);
}

TEST(Controller, ActivationLifecycleTimestamps) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  const auto result = f.controller.submit("fn");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(1));
  f.controller.activation_started(result.activation, a, true);
  f.sim.run_until(SimTime::seconds(2));
  f.controller.activation_completed(result.activation);
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kCompleted);
  EXPECT_EQ(rec.start_time, SimTime::seconds(1));
  EXPECT_EQ(rec.end_time, SimTime::seconds(2));
  EXPECT_EQ(rec.response_time(), SimTime::seconds(2));
  EXPECT_TRUE(rec.cold_start);
  EXPECT_EQ(rec.executed_by, a);
}

TEST(Controller, TimeoutFiresForUnservedActivation) {
  Fixture f;
  FunctionSpec slow = fixed_duration_function("slow", SimTime::millis(10));
  slow.timeout = SimTime::minutes(2);
  f.registry.put(slow);
  f.controller.register_invoker();
  const auto result = f.controller.submit("slow");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::minutes(3));
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kTimedOut);
  EXPECT_EQ(f.controller.counters().timed_out, 1u);
  EXPECT_FALSE(f.controller.deliverable(result.activation));
}

TEST(Controller, CompletionCancelsTimeout) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  const auto result = f.controller.submit("fn");
  f.controller.activation_started(result.activation, a, false);
  f.controller.activation_completed(result.activation);
  f.sim.run_until(SimTime::hours(1));
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kCompleted);
  EXPECT_EQ(f.controller.counters().timed_out, 0u);
}

TEST(Controller, InterruptedActivationRequeuedNotLost) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  const auto result = f.controller.submit("fn");
  f.controller.activation_started(result.activation, a, false);
  f.controller.activation_interrupted(result.activation);
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kQueued);
  EXPECT_EQ(rec.interruptions, 1u);
  EXPECT_TRUE(f.controller.deliverable(result.activation));
}

TEST(Controller, RequeueDropsTerminalActivations) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  const auto result = f.controller.submit("fn");
  f.controller.activation_started(result.activation, a, false);
  f.controller.activation_completed(result.activation);
  mq::Message msg;
  msg.id = result.activation;
  msg.key = "fn";
  f.controller.requeue_to_fast_lane(msg);
  EXPECT_TRUE(f.broker.fast_lane().empty());
}

TEST(Controller, WatchdogDetectsSilentInvoker) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  ASSERT_TRUE(f.controller.submit("fn").accepted);
  // No heartbeats at all: after miss_limit * interval the invoker is
  // unresponsive and its backlog is rescued.
  f.sim.run_until(SimTime::seconds(30));
  EXPECT_EQ(f.controller.invoker_health(a), InvokerHealth::kUnresponsive);
  EXPECT_EQ(f.controller.counters().unresponsive_detected, 1u);
  EXPECT_EQ(f.broker.fast_lane().size(), 1u);
  EXPECT_EQ(f.controller.healthy_count(), 0u);
}

TEST(Controller, HeartbeatsKeepInvokerHealthy) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  f.sim.every(SimTime::seconds(2), [&] { f.controller.heartbeat(a); });
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(f.controller.invoker_health(a), InvokerHealth::kHealthy);
}

TEST(Controller, DeregisterRemovesFromRouting) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  const InvokerId b = f.controller.register_invoker();
  f.controller.begin_drain(a);
  f.controller.deregister(a);
  EXPECT_EQ(f.controller.invoker_health(a), InvokerHealth::kGone);
  EXPECT_EQ(f.controller.healthy_count(), 1u);
  const auto result = f.controller.submit("fn");
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(f.broker.topic(Controller::invoker_topic_name(b)).size(), 1u);
}

TEST(Controller, MembershipChangeRemapsRouting) {
  Fixture f;
  const InvokerId a = f.controller.register_invoker();
  ASSERT_TRUE(f.controller.submit("fn").accepted);
  ASSERT_EQ(f.broker.topic(Controller::invoker_topic_name(a)).size(), 1u);
  // A second invoker appears; "fn" may remap, but some invoker gets it.
  f.controller.register_invoker();
  ASSERT_TRUE(f.controller.submit("fn").accepted);
  std::size_t total = 0;
  for (InvokerId id = 0; id < 2; ++id)
    total += f.broker.topic(Controller::invoker_topic_name(id)).size();
  EXPECT_EQ(total, 2u);
}

}  // namespace
}  // namespace hpcwhisk::whisk
