// Recovery paths of the controller/invoker pair under failure injection:
//  * an unresponsive invoker that heartbeats again is readmitted;
//  * the watchdog re-submits the in-flight work of a vanished invoker to
//    the fast lane (not just its unpulled backlog);
//  * duplicate message delivery is idempotent via deliverable().

#include <gtest/gtest.h>

#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;
  Controller controller{sim, broker, registry};

  Fixture() {
    registry.put(fixed_duration_function("fast", SimTime::millis(10)));
    registry.put(fixed_duration_function("slow", SimTime::minutes(2)));
  }

  std::unique_ptr<Invoker> make_invoker(std::uint64_t seed = 42) {
    return std::make_unique<Invoker>(sim, broker, registry, controller,
                                     Invoker::Config{}, Rng{seed});
  }
};

TEST(Recovery, StalledInvokerIsFlaggedThenReadmittedOnThaw) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  f.sim.run_until(SimTime::seconds(4));
  ASSERT_EQ(f.controller.invoker_health(inv->id()), InvokerHealth::kHealthy);

  // Freeze for 30 s: more than 3 missed heartbeats at 2 s.
  inv->stall(SimTime::seconds(30));
  EXPECT_TRUE(inv->stalled());
  f.sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(f.controller.invoker_health(inv->id()),
            InvokerHealth::kUnresponsive);
  EXPECT_GE(f.controller.counters().unresponsive_detected, 1u);

  // The thaw heartbeats immediately: readmission without waiting for the
  // next heartbeat period.
  f.sim.run_until(SimTime::seconds(35));
  EXPECT_FALSE(inv->stalled());
  EXPECT_EQ(f.controller.invoker_health(inv->id()), InvokerHealth::kHealthy);
  EXPECT_EQ(f.controller.healthy_count(), 1u);

  // The readmitted invoker serves again.
  const auto result = f.controller.submit("fast");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(40));
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kCompleted);
}

TEST(Recovery, StallPreservesExecutionRemainingTime) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("slow");  // 2 min body
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(30));  // well into the execution
  ASSERT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kRunning);

  inv->stall(SimTime::seconds(45));
  f.sim.run_until(SimTime::minutes(4));
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kCompleted);
  // A 2 min body + 45 s freeze ends ~2m45s + startup after submit; a
  // restart-from-zero would instead finish near 3m15s+.
  EXPECT_LT(rec.end_time, SimTime::minutes(3));
  EXPECT_GE(rec.end_time, SimTime::minutes(2) + SimTime::seconds(45));
}

TEST(Recovery, WatchdogRescuesInFlightWorkOfDeadInvoker) {
  Fixture f;
  auto victim = f.make_invoker(1);
  victim->start();
  const auto result = f.controller.submit("slow");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kRunning);
  ASSERT_EQ(f.controller.activation(result.activation).executed_by,
            victim->id());

  // A second invoker joins, then the first dies mid-execution with no
  // hand-off. Its topic backlog is empty — the activation lives only in
  // its running set, so only the in-flight rescue can save it.
  auto rescuer = f.make_invoker(2);
  rescuer->start();
  const InvokerId victim_id = victim->id();
  victim->hard_kill();
  f.sim.run_until(SimTime::minutes(4));

  EXPECT_EQ(f.controller.invoker_health(victim_id),
            InvokerHealth::kUnresponsive);
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_GE(rec.requeues, 1u) << "watchdog must re-submit in-flight work";
  EXPECT_EQ(rec.state, ActivationState::kCompleted)
      << "the rescuer must finish the re-submitted activation";
  EXPECT_EQ(rec.executed_by, rescuer->id());
  EXPECT_GE(f.controller.counters().requeued, 1u);
}

TEST(Recovery, DuplicateDeliveryAfterCompletionIsDropped) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("fast");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(5));
  ASSERT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kCompleted);
  ASSERT_EQ(inv->counters().executed, 1u);

  // A stale duplicate (e.g. an mq duplication fault) arrives afterwards.
  mq::Message dup;
  dup.id = result.activation;
  dup.key = "fast";
  f.broker.fast_lane().publish(dup, f.sim.now());
  f.sim.run_until(SimTime::seconds(10));

  EXPECT_EQ(inv->counters().executed, 1u) << "terminal work must not rerun";
  EXPECT_GE(inv->counters().dropped_undeliverable, 1u);
  EXPECT_EQ(f.controller.counters().completed, 1u);
}

TEST(Recovery, DuplicateDeliveryWhilePendingCompletesExactlyOnce) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("fast");
  ASSERT_TRUE(result.accepted);
  // Duplicate lands before the original was even pulled: both copies may
  // execute (at-least-once), but the activation terminates exactly once.
  mq::Message dup;
  dup.id = result.activation;
  dup.key = "fast";
  f.broker.fast_lane().publish(dup, f.sim.now());
  f.sim.run_until(SimTime::seconds(10));

  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kCompleted);
  EXPECT_EQ(f.controller.counters().completed, 1u);
}

}  // namespace
}  // namespace hpcwhisk::whisk
