// CPU-dilation model: concurrent CPU-bound executions beyond the node's
// core count slow each other down.

#include <gtest/gtest.h>

#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;
  Controller controller{sim, broker, registry};

  Fixture() {
    registry.put(fixed_duration_function("busy", SimTime::seconds(60)));
  }

  std::unique_ptr<Invoker> make(bool dilation, std::uint32_t cores) {
    Invoker::Config cfg;
    cfg.cpu_dilation = dilation;
    cfg.cores = cores;
    cfg.max_concurrent = 64;
    cfg.pool.max_containers = 64;
    return std::make_unique<Invoker>(sim, broker, registry, controller, cfg,
                                     Rng{9});
  }

  double mean_exec_seconds() {
    std::vector<double> xs;
    for (const auto& rec : controller.activations()) {
      if (rec.state != ActivationState::kCompleted) continue;
      xs.push_back((rec.end_time - rec.start_time).to_seconds());
    }
    double sum = 0;
    for (const double x : xs) sum += x;
    return xs.empty() ? 0 : sum / static_cast<double>(xs.size());
  }
};

TEST(CpuDilation, OversubscriptionSlowsExecutions) {
  Fixture f;
  auto inv = f.make(true, /*cores=*/2);
  inv->start();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(f.controller.submit("busy").accepted);
  f.sim.run_until(SimTime::minutes(30));
  // 8 concurrent CPU-bound executions on 2 cores: ~4x dilation.
  EXPECT_GT(f.mean_exec_seconds(), 100.0);
}

TEST(CpuDilation, NoEffectUnderCoreCount) {
  Fixture f;
  auto inv = f.make(true, /*cores=*/24);
  inv->start();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(f.controller.submit("busy").accepted);
  f.sim.run_until(SimTime::minutes(10));
  EXPECT_NEAR(f.mean_exec_seconds(), 60.0, 1.0);
}

TEST(CpuDilation, DisabledMeansNominal) {
  Fixture f;
  auto inv = f.make(false, /*cores=*/1);
  inv->start();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(f.controller.submit("busy").accepted);
  f.sim.run_until(SimTime::minutes(10));
  EXPECT_NEAR(f.mean_exec_seconds(), 60.0, 1.0);
}

}  // namespace
}  // namespace hpcwhisk::whisk
