// Lease-based serving tier, end to end at the whisk layer: hot functions
// earn a lease and later calls bypass the topic queue through the direct
// seam; saturated workers fall back to the queue path without losing the
// lease; departures (drain, hard kill) revoke every lease on the worker.

#include <gtest/gtest.h>

#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;
  Controller controller;

  static Controller::Config lease_on() {
    Controller::Config cfg;
    cfg.lease.enabled = true;
    cfg.lease.term = SimTime::seconds(30);
    cfg.lease.hot_interarrival = SimTime::millis(800);
    cfg.lease.min_arrivals = 3;
    return cfg;
  }

  explicit Fixture(Controller::Config cfg = lease_on())
      : controller{sim, broker, registry, cfg} {
    registry.put(fixed_duration_function("fast", SimTime::millis(10)));
    registry.put(fixed_duration_function("slow", SimTime::minutes(2)));
  }

  std::unique_ptr<Invoker> make_invoker(Invoker::Config cfg = {}) {
    return std::make_unique<Invoker>(sim, broker, registry, controller, cfg,
                                     Rng{42});
  }

  /// Submits `function` `calls` times, `gap` apart, running the clock in
  /// between; returns the activation ids.
  std::vector<ActivationId> drive(const std::string& function, int calls,
                                  SimTime gap = SimTime::millis(200)) {
    std::vector<ActivationId> ids;
    for (int i = 0; i < calls; ++i) {
      const auto r = controller.submit(function);
      EXPECT_TRUE(r.accepted);
      if (r.accepted) ids.push_back(r.activation);
      sim.run_until(sim.now() + gap);
    }
    return ids;
  }
};

TEST(LeaseRouting, DisabledByDefaultKeepsLegacyPath) {
  Fixture f{Controller::Config{}};
  auto inv = f.make_invoker();
  inv->start();
  (void)f.drive("fast", 6);
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.controller.lease_manager(), nullptr);
  EXPECT_EQ(f.controller.counters().lease_hits, 0u);
  EXPECT_EQ(f.controller.counters().lease_granted, 0u);
  EXPECT_EQ(f.controller.counters().lease_fallback, 0u);
  EXPECT_EQ(inv->counters().direct_invocations, 0u);
  EXPECT_EQ(f.controller.counters().completed, 6u);
}

TEST(LeaseRouting, HotFunctionEarnsLeaseThenBypassesTheQueue) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto ids = f.drive("fast", 10);
  f.sim.run_until(SimTime::seconds(30));
  // Arrivals 1-2 are below min_arrivals, the 3rd routes normally and
  // grants; every later call goes through the seam.
  EXPECT_EQ(f.controller.counters().lease_granted, 1u);
  EXPECT_EQ(f.controller.counters().lease_hits, 7u);
  EXPECT_EQ(inv->counters().direct_invocations, 7u);
  ASSERT_NE(f.controller.lease_manager(), nullptr);
  EXPECT_EQ(f.controller.lease_manager()->stats().hits, 7u);
  EXPECT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  for (const ActivationId id : ids) {
    EXPECT_EQ(f.controller.activation(id).state, ActivationState::kCompleted);
  }
  // The direct path always lands on a warm container: cold/prewarm
  // starts can only come from the pre-grant queue calls (the second call
  // may race the first call's still-booting container), never from the
  // 7 hits.
  const auto& pc = inv->pool().counters();
  EXPECT_LE(pc.cold_starts + pc.prewarm_hits, 3u);
  EXPECT_GE(pc.warm_hits, 7u);
  EXPECT_EQ(pc.warm_hits + pc.prewarm_hits + pc.cold_starts, 10u);
}

TEST(LeaseRouting, LeasedCallsPinToOneInvoker) {
  Fixture f;
  auto a = f.make_invoker();
  auto b = f.make_invoker();
  a->start();
  b->start();
  const auto ids = f.drive("fast", 12);
  f.sim.run_until(SimTime::seconds(30));
  ASSERT_GE(f.controller.counters().lease_hits, 8u);
  // Every call after the grant executed on the same (leased) invoker.
  const auto& pinned = f.controller.activation(ids[4]);
  ASSERT_EQ(pinned.state, ActivationState::kCompleted);
  for (std::size_t i = 4; i < ids.size(); ++i) {
    const auto& rec = f.controller.activation(ids[i]);
    EXPECT_EQ(rec.state, ActivationState::kCompleted);
    EXPECT_EQ(rec.executed_by, pinned.executed_by) << "call " << i;
  }
}

TEST(LeaseRouting, BusyWorkerFallsBackToQueueAndKeepsTheLease) {
  Fixture f;
  Invoker::Config cfg;
  cfg.max_concurrent = 1;  // the dispatch gate closes while slow runs
  auto inv = f.make_invoker(cfg);
  inv->start();
  (void)f.drive("fast", 5);
  ASSERT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  const auto before = f.controller.counters().lease_fallback;
  // Occupy the single execution slot, then call the leased function: the
  // seam refuses, the call pays the queue path, the lease survives.
  (void)f.controller.submit("slow");
  f.sim.run_until(f.sim.now() + SimTime::seconds(2));
  ASSERT_EQ(inv->running_executions(), 1u);
  const auto r = f.controller.submit("fast");
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(f.controller.counters().lease_fallback, before + 1);
  EXPECT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  EXPECT_EQ(f.controller.lease_manager()->stats().revoked, 0u);
}

TEST(LeaseRouting, FullPoolFallsBackInsteadOfEvicting) {
  Fixture f;
  Invoker::Config cfg;
  cfg.pool.max_containers = 1;  // tiny node: one container total
  cfg.pool.prewarm_kind.clear();
  auto inv = f.make_invoker(cfg);
  inv->start();
  (void)f.drive("fast", 5);
  ASSERT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  const auto evictions_before = inv->pool().counters().evictions;
  // "slow" evicts fast's idle container (queue path may do that); now the
  // pool is full and busy, so a direct call would cold-start at best —
  // the seam must refuse rather than storm the pool.
  (void)f.controller.submit("slow");
  f.sim.run_until(f.sim.now() + SimTime::seconds(2));
  ASSERT_EQ(inv->pool().busy_containers(), 1u);
  const auto before = f.controller.counters().lease_fallback;
  (void)f.controller.submit("fast");
  EXPECT_EQ(f.controller.counters().lease_fallback, before + 1);
  EXPECT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  // The fallback itself never evicted anything.
  EXPECT_EQ(inv->pool().counters().evictions, evictions_before + 1);
}

TEST(LeaseRouting, DrainRevokesEveryLeaseOnTheWorker) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  (void)f.drive("fast", 5);
  ASSERT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  inv->sigterm([] {});
  EXPECT_EQ(f.controller.lease_manager()->lease_count(), 0u);
  EXPECT_GE(f.controller.lease_manager()->stats().revoked, 1u);
}

TEST(LeaseRouting, HardKillRevokesViaTheWatchdog) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  (void)f.drive("fast", 5);
  ASSERT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  inv->hard_kill();
  // 3 missed heartbeats at 2 s + watchdog cadence: well inside 15 s.
  f.sim.run_until(f.sim.now() + SimTime::seconds(15));
  EXPECT_GE(f.controller.counters().unresponsive_detected, 1u);
  EXPECT_EQ(f.controller.lease_manager()->lease_count(), 0u);
  EXPECT_GE(f.controller.lease_manager()->stats().revoked, 1u);
}

TEST(LeaseRouting, ReGrantsOnANewInvokerAfterRevocation) {
  Fixture f;
  auto a = f.make_invoker();
  a->start();
  (void)f.drive("fast", 5);
  ASSERT_EQ(f.controller.lease_manager()->lease_count(), 1u);
  a->sigterm([] {});
  ASSERT_EQ(f.controller.lease_manager()->lease_count(), 0u);
  auto b = f.make_invoker();
  b->start();
  const auto granted_before = f.controller.lease_manager()->stats().granted;
  (void)f.drive("fast", 4);
  f.sim.run_until(f.sim.now() + SimTime::seconds(10));
  // Still hot: the first routed call re-leases on the survivor.
  EXPECT_EQ(f.controller.lease_manager()->stats().granted, granted_before + 1);
  EXPECT_EQ(f.controller.lease_manager()->lease_count(), 1u);
}

}  // namespace
}  // namespace hpcwhisk::whisk
