#include "hpcwhisk/whisk/invoker.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;
  Controller controller{sim, broker, registry};

  Fixture() {
    registry.put(fixed_duration_function("fast", SimTime::millis(10)));
    FunctionSpec slow = fixed_duration_function("slow", SimTime::minutes(2));
    registry.put(slow);
    FunctionSpec pinned = fixed_duration_function("pinned", SimTime::minutes(2));
    pinned.interruptible = false;
    registry.put(pinned);
  }

  std::unique_ptr<Invoker> make_invoker(Invoker::Config cfg = {}) {
    return std::make_unique<Invoker>(sim, broker, registry, controller, cfg,
                                     Rng{42});
  }
};

TEST(Invoker, StartRegistersWithController) {
  Fixture f;
  auto inv = f.make_invoker();
  EXPECT_FALSE(inv->started());
  inv->start();
  EXPECT_TRUE(inv->started());
  EXPECT_EQ(f.controller.healthy_count(), 1u);
}

TEST(Invoker, ExecutesSubmittedActivation) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("fast");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(5));
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kCompleted);
  EXPECT_TRUE(rec.cold_start);
  EXPECT_EQ(inv->counters().executed, 1u);
  // Response = poll delay + cold start + 10 ms body; well under 2 s.
  EXPECT_LT(rec.response_time(), SimTime::seconds(2));
}

TEST(Invoker, SecondCallHitsWarmContainer) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto first = f.controller.submit("fast");
  f.sim.run_until(SimTime::seconds(5));
  const auto second = f.controller.submit("fast");
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_TRUE(f.controller.activation(first.activation).cold_start);
  EXPECT_FALSE(f.controller.activation(second.activation).cold_start);
  // Warm path is visibly faster.
  EXPECT_LT(f.controller.activation(second.activation).response_time(),
            f.controller.activation(first.activation).response_time());
}

TEST(Invoker, FastLaneConsumedBeforeOwnTopic) {
  Fixture f;
  Invoker::Config cfg;
  cfg.max_concurrent = 1;  // serialize dispatch so pull order is visible
  auto inv = f.make_invoker(cfg);
  inv->start();
  // Two activations: one direct, one planted in the fast lane *after* the
  // direct one. The fast-lane one must start first on the next poll.
  const auto direct = f.controller.submit("fast");
  const auto planted = f.controller.submit("fast");
  // Move the second message from the invoker topic to the fast lane by
  // draining it manually (simulating another invoker's hand-off).
  auto msgs = f.broker.topic(Controller::invoker_topic_name(inv->id())).drain();
  ASSERT_EQ(msgs.size(), 2u);
  // Put the direct one back in the invoker topic, the planted one in the
  // fast lane. The planted message should still win.
  f.broker.topic(Controller::invoker_topic_name(inv->id()))
      .publish(msgs[0], f.sim.now());
  f.broker.fast_lane().publish(msgs[1], f.sim.now());
  f.sim.run_until(SimTime::seconds(5));
  const auto& direct_rec = f.controller.activation(direct.activation);
  const auto& planted_rec = f.controller.activation(planted.activation);
  EXPECT_EQ(direct_rec.state, ActivationState::kCompleted);
  EXPECT_EQ(planted_rec.state, ActivationState::kCompleted);
  EXPECT_LE(planted_rec.start_time, direct_rec.start_time);
}

TEST(Invoker, SigtermRequeuesBufferedWork) {
  Fixture f;
  Invoker::Config cfg;
  cfg.max_concurrent = 1;  // force queueing in the buffer
  auto inv = f.make_invoker(cfg);
  inv->start();
  std::vector<ActivationId> ids;
  for (int i = 0; i < 5; ++i) {
    const auto result = f.controller.submit("slow");
    ASSERT_TRUE(result.accepted);
    ids.push_back(result.activation);
  }
  f.sim.run_until(SimTime::seconds(10));  // one running, rest buffered/queued
  EXPECT_EQ(inv->running_executions(), 1u);

  bool drained = false;
  inv->sigterm([&] { drained = true; });
  f.sim.run_until(SimTime::seconds(11));
  EXPECT_TRUE(drained);  // "slow" is interruptible: drain is immediate
  EXPECT_TRUE(inv->dead());
  // Nothing lost: every activation is queued in the fast lane (requeued)
  // and none is terminal-failed.
  std::size_t queued = 0;
  for (const ActivationId id : ids) {
    const auto& rec = f.controller.activation(id);
    EXPECT_TRUE(rec.state == ActivationState::kQueued) << to_string(rec.state);
    ++queued;
  }
  EXPECT_EQ(queued, 5u);
  EXPECT_EQ(f.broker.fast_lane().size(), 5u);
}

TEST(Invoker, SigtermWaitsForNonInterruptibleWork) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("pinned");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(inv->running_executions(), 1u);

  bool drained = false;
  inv->sigterm([&] { drained = true; });
  EXPECT_FALSE(drained);  // still running the pinned function
  EXPECT_TRUE(inv->draining());
  f.sim.run_until(SimTime::minutes(3));
  EXPECT_TRUE(drained);  // finished naturally, then drain completed
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kCompleted);
}

TEST(Invoker, InterruptedExecutionRequeuedToFastLane) {
  Fixture f;
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("slow");
  f.sim.run_until(SimTime::seconds(30));  // mid-execution
  ASSERT_EQ(inv->running_executions(), 1u);
  bool drained = false;
  inv->sigterm([&] { drained = true; });
  EXPECT_TRUE(drained);
  EXPECT_EQ(inv->counters().interrupted, 1u);
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kQueued);
  EXPECT_EQ(rec.interruptions, 1u);
  EXPECT_EQ(f.broker.fast_lane().size(), 1u);
}

TEST(Invoker, RequeuedWorkPickedUpByAnotherInvoker) {
  Fixture f;
  auto a = f.make_invoker();
  a->start();
  const auto result = f.controller.submit("slow");
  f.sim.run_until(SimTime::seconds(30));
  a->sigterm([] {});
  // A second invoker arrives and picks the interrupted call from the
  // fast lane.
  auto b = f.make_invoker();
  b->start();
  f.sim.run_until(SimTime::minutes(5));
  const auto& rec = f.controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kCompleted);
  EXPECT_EQ(rec.executed_by, b->id());
}

TEST(Invoker, HardKillLosesWorkWhichTimesOut) {
  Fixture f;
  FunctionSpec fn = fixed_duration_function("doomed", SimTime::minutes(2));
  fn.timeout = SimTime::minutes(5);
  f.registry.put(fn);
  auto inv = f.make_invoker();
  inv->start();
  const auto result = f.controller.submit("doomed");
  f.sim.run_until(SimTime::seconds(30));
  inv->hard_kill();
  f.sim.run_until(SimTime::minutes(6));
  // Lost without hand-off: the client sees a timeout (stock-OpenWhisk
  // failure mode the paper fixes for graceful departures).
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kTimedOut);
}

TEST(Invoker, CapacityRejectionFailsActivation) {
  Fixture f;
  Invoker::Config cfg;
  cfg.max_concurrent = 8;
  cfg.pool.max_containers = 2;  // tiny node: 3rd concurrent exec rejected
  cfg.cpu_dilation = false;
  auto inv = f.make_invoker(cfg);
  inv->start();
  std::vector<ActivationId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(f.controller.submit("slow").activation);
  f.sim.run_until(SimTime::seconds(10));
  std::size_t failed = 0;
  for (const auto id : ids) {
    if (f.controller.activation(id).state == ActivationState::kFailed) ++failed;
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(inv->counters().capacity_failures, 1u);
  EXPECT_EQ(f.controller.counters().failed, 1u);
}

TEST(Invoker, DropsUndeliverableMessages) {
  Fixture f;
  FunctionSpec fn = fixed_duration_function("expiring", SimTime::millis(10));
  fn.timeout = SimTime::seconds(30);
  f.registry.put(fn);
  auto inv = f.make_invoker();
  // Submit while a registered invoker exists but is not yet polling...
  inv->start();
  const auto result = f.controller.submit("expiring");
  // Stall the message by draining it now and re-publishing it after the
  // timeout fires.
  auto msgs = f.broker.topic(Controller::invoker_topic_name(inv->id())).drain();
  ASSERT_EQ(msgs.size(), 1u);
  f.sim.run_until(SimTime::minutes(1));  // activation timed out meanwhile
  f.broker.topic(Controller::invoker_topic_name(inv->id()))
      .publish(msgs[0], f.sim.now());
  f.sim.run_until(SimTime::minutes(2));
  EXPECT_EQ(f.controller.activation(result.activation).state,
            ActivationState::kTimedOut);
  EXPECT_EQ(inv->counters().dropped_undeliverable, 1u);
  EXPECT_EQ(inv->counters().executed, 0u);
}

TEST(Invoker, SigtermDuringWarmupExitsImmediately) {
  Fixture f;
  auto inv = f.make_invoker();
  // Never started (still warming up in pilot terms).
  bool drained = false;
  inv->sigterm([&] { drained = true; });
  EXPECT_TRUE(drained);
  EXPECT_TRUE(inv->dead());
}

}  // namespace
}  // namespace hpcwhisk::whisk
