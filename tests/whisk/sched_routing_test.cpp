// Controller-level behavior of the data-driven route modes: scheduler
// lifecycle wiring, deadline-class front publishes, and — the invariant
// the ledger exists for — zero leaked backlog after watchdog rescues.

#include <gtest/gtest.h>

#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;

  Fixture() {
    registry.put(fixed_duration_function("fast", SimTime::millis(10)));
    registry.put(fixed_duration_function("slow", SimTime::minutes(2)));
  }

  Controller make_controller(RouteMode mode, bool deadline_classes = false) {
    Controller::Config cfg;
    cfg.route_mode = mode;
    cfg.sched.deadline_classes = deadline_classes;
    return Controller{sim, broker, registry, cfg};
  }
};

TEST(SchedRouting, LegacyModesHaveNoScheduler) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kHashProbing);
  EXPECT_EQ(controller.scheduler(), nullptr);
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
}

TEST(SchedRouting, DataDrivenModeLearnsFromCompletions) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kLeastExpectedWork);
  ASSERT_NE(controller.scheduler(), nullptr);
  Invoker invoker{f.sim, f.broker, f.registry, controller, {}, Rng{1}};
  invoker.start();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(controller.submit("fast").accepted);
  }
  f.sim.run_until(SimTime::minutes(1));

  const auto* sched = controller.scheduler();
  EXPECT_EQ(controller.counters().completed, 20u);
  EXPECT_EQ(sched->stats().decisions, 20u);
  EXPECT_GT(sched->stats().error_observations, 0u);
  EXPECT_TRUE(sched->estimator().seen("fast"));
  // The 10ms body converged into the model (EWMA seeds on the first
  // sample, so even one completion pins it).
  EXPECT_EQ(sched->estimator().predict("fast"), SimTime::millis(10));
  // Everything drained: no outstanding predicted work.
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
}

TEST(SchedRouting, BacklogIsVisibleWhileWorkIsOutstanding) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kSjfAffinity);
  Invoker invoker{f.sim, f.broker, f.registry, controller, {}, Rng{1}};
  invoker.start();
  ASSERT_TRUE(controller.submit("slow").accepted);
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_GT(controller.expected_backlog_ticks(), 0);
  f.sim.run_until(SimTime::minutes(4));
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
}

TEST(SchedRouting, DeadlineClassesPublishToQueueFront) {
  Fixture f;
  auto controller =
      f.make_controller(RouteMode::kLeastExpectedWork, /*deadline=*/true);
  const InvokerId id = controller.register_invoker();
  // Never-seen prior (100ms) is under the short-class bound (250ms):
  // the publish goes to the front of the invoker's queue.
  ASSERT_TRUE(controller.submit("fast").accepted);
  const auto& topic = f.broker.topic(Controller::invoker_topic_name(id));
  EXPECT_EQ(topic.counters().front_published, 1u);
  EXPECT_EQ(controller.scheduler()->stats().short_class, 1u);
}

TEST(SchedRouting, WatchdogRescueLeavesZeroLeakedBacklog) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kLeastExpectedWork);
  auto victim = std::make_unique<Invoker>(f.sim, f.broker, f.registry,
                                          controller, Invoker::Config{},
                                          Rng{1});
  victim->start();
  const auto result = controller.submit("slow");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(controller.activation(result.activation).state,
            ActivationState::kRunning);

  auto rescuer = std::make_unique<Invoker>(f.sim, f.broker, f.registry,
                                           controller, Invoker::Config{},
                                           Rng{2});
  rescuer->start();
  victim->hard_kill();
  f.sim.run_until(SimTime::minutes(5));

  const auto& rec = controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kCompleted);
  EXPECT_EQ(rec.executed_by, rescuer->id());

  // The kill dropped the victim's charge; the rescuer's restart
  // re-charged it; completion released it. Books must read exactly zero
  // — a leak here would bias every future routing decision.
  const auto* sched = controller.scheduler();
  EXPECT_GE(sched->stats().forgotten, 1u);
  EXPECT_GE(sched->stats().rescue_charges, 1u);
  EXPECT_EQ(sched->ledger().total(), 0);
  EXPECT_EQ(sched->ledger().charge_count(), 0u);
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
  EXPECT_FALSE(sched->is_warm(victim->id(), "slow"));
}

TEST(SchedRouting, RouteModeStringsRoundTrip) {
  for (const auto mode :
       {RouteMode::kHashProbing, RouteMode::kHashOnly, RouteMode::kRoundRobin,
        RouteMode::kLeastLoaded, RouteMode::kLeastExpectedWork,
        RouteMode::kSjfAffinity}) {
    const auto parsed = route_mode_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(route_mode_from_string("teleport").has_value());
}

}  // namespace
}  // namespace hpcwhisk::whisk
