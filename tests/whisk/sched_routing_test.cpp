// Controller-level behavior of the data-driven route modes: scheduler
// lifecycle wiring, deadline-class front publishes, and — the invariant
// the ledger exists for — zero leaked backlog after watchdog rescues.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "hpcwhisk/obs/export.hpp"
#include "hpcwhisk/obs/observability.hpp"
#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;

  Fixture() {
    registry.put(fixed_duration_function("fast", SimTime::millis(10)));
    registry.put(fixed_duration_function("slow", SimTime::minutes(2)));
  }

  Controller make_controller(RouteMode mode, bool deadline_classes = false) {
    Controller::Config cfg;
    cfg.route_mode = mode;
    cfg.sched.deadline_classes = deadline_classes;
    return Controller{sim, broker, registry, cfg};
  }
};

TEST(SchedRouting, LegacyModesHaveNoScheduler) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kHashProbing);
  EXPECT_EQ(controller.scheduler(), nullptr);
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
}

TEST(SchedRouting, DataDrivenModeLearnsFromCompletions) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kLeastExpectedWork);
  ASSERT_NE(controller.scheduler(), nullptr);
  Invoker invoker{f.sim, f.broker, f.registry, controller, {}, Rng{1}};
  invoker.start();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(controller.submit("fast").accepted);
  }
  f.sim.run_until(SimTime::minutes(1));

  const auto* sched = controller.scheduler();
  EXPECT_EQ(controller.counters().completed, 20u);
  EXPECT_EQ(sched->stats().decisions, 20u);
  EXPECT_GT(sched->stats().error_observations, 0u);
  EXPECT_TRUE(sched->estimator().seen("fast"));
  // The 10ms body converged into the model (EWMA seeds on the first
  // sample, so even one completion pins it).
  EXPECT_EQ(sched->estimator().predict("fast"), SimTime::millis(10));
  // Everything drained: no outstanding predicted work.
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
}

TEST(SchedRouting, BacklogIsVisibleWhileWorkIsOutstanding) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kSjfAffinity);
  Invoker invoker{f.sim, f.broker, f.registry, controller, {}, Rng{1}};
  invoker.start();
  ASSERT_TRUE(controller.submit("slow").accepted);
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_GT(controller.expected_backlog_ticks(), 0);
  f.sim.run_until(SimTime::minutes(4));
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
}

TEST(SchedRouting, DeadlineClassesPublishToQueueFront) {
  Fixture f;
  auto controller =
      f.make_controller(RouteMode::kLeastExpectedWork, /*deadline=*/true);
  const InvokerId id = controller.register_invoker();
  // Never-seen prior (100ms) is under the short-class bound (250ms):
  // the publish goes to the front of the invoker's queue.
  ASSERT_TRUE(controller.submit("fast").accepted);
  const auto& topic = f.broker.topic(Controller::invoker_topic_name(id));
  EXPECT_EQ(topic.counters().front_published, 1u);
  EXPECT_EQ(controller.scheduler()->stats().short_class, 1u);
}

TEST(SchedRouting, WatchdogRescueLeavesZeroLeakedBacklog) {
  Fixture f;
  auto controller = f.make_controller(RouteMode::kLeastExpectedWork);
  auto victim = std::make_unique<Invoker>(f.sim, f.broker, f.registry,
                                          controller, Invoker::Config{},
                                          Rng{1});
  victim->start();
  const auto result = controller.submit("slow");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(controller.activation(result.activation).state,
            ActivationState::kRunning);

  auto rescuer = std::make_unique<Invoker>(f.sim, f.broker, f.registry,
                                           controller, Invoker::Config{},
                                           Rng{2});
  rescuer->start();
  victim->hard_kill();
  f.sim.run_until(SimTime::minutes(5));

  const auto& rec = controller.activation(result.activation);
  EXPECT_EQ(rec.state, ActivationState::kCompleted);
  EXPECT_EQ(rec.executed_by, rescuer->id());

  // The kill dropped the victim's charge; the rescuer's restart
  // re-charged it; completion released it. Books must read exactly zero
  // — a leak here would bias every future routing decision.
  const auto* sched = controller.scheduler();
  EXPECT_GE(sched->stats().forgotten, 1u);
  EXPECT_GE(sched->stats().rescue_charges, 1u);
  EXPECT_EQ(sched->ledger().total(), 0);
  EXPECT_EQ(sched->ledger().charge_count(), 0u);
  EXPECT_EQ(controller.expected_backlog_ticks(), 0);
  EXPECT_FALSE(sched->is_warm(victim->id(), "slow"));
}

TEST(SchedRouting, DecisionRecordsExplainEveryRouting) {
  // The explainability contract: with obs attached, every data-driven
  // routing emits one RouteDecision whose chosen worker IS the worker
  // the activation was routed to, whose runner-up (when present)
  // differs, and whose costs are consistent with the policy (the chosen
  // expected completion never exceeds the rejected one).
  Fixture f;
  obs::Observability obs;
  Controller::Config cfg;
  cfg.route_mode = RouteMode::kLeastExpectedWork;
  cfg.obs = &obs;
  Controller controller{f.sim, f.broker, f.registry, cfg};
  Invoker a{f.sim, f.broker, f.registry, controller, {}, Rng{1}};
  Invoker b{f.sim, f.broker, f.registry, controller, {}, Rng{2}};
  a.start();
  b.start();

  std::vector<ActivationId> submitted;
  for (int i = 0; i < 12; ++i) {
    const auto result = controller.submit(i % 3 == 0 ? "slow" : "fast");
    ASSERT_TRUE(result.accepted);
    submitted.push_back(result.activation);
  }
  f.sim.run_until(SimTime::minutes(5));

  ASSERT_EQ(obs.decisions.recorded(), submitted.size());
  ASSERT_EQ(obs.decisions.decisions().size(), submitted.size());
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    const obs::RouteDecision& d = obs.decisions.decisions()[i];
    EXPECT_EQ(d.call, submitted[i]);
    EXPECT_STREQ(d.policy, "least-expected-work");
    EXPECT_EQ(d.chosen, controller.activation(submitted[i]).routed_to);
    EXPECT_EQ(d.candidates, 2u);
    EXPECT_GT(d.predicted_ticks, 0);
    if (d.runner_up != obs::RouteDecision::kNone) {
      EXPECT_NE(d.runner_up, d.chosen);
      EXPECT_GE(d.runner_up_cost_ticks, d.chosen_cost_ticks);
    }
  }

  // And the records survive a JSONL round trip.
  std::ostringstream os;
  obs::write_decisions_jsonl(os, obs.decisions, {});
  // One "_run" info line plus one line per decision.
  std::size_t lines = 0;
  for (const char c : os.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, submitted.size() + 1);
}

TEST(SchedRouting, RouteModeStringsRoundTrip) {
  for (const auto mode :
       {RouteMode::kHashProbing, RouteMode::kHashOnly, RouteMode::kRoundRobin,
        RouteMode::kLeastLoaded, RouteMode::kLeastExpectedWork,
        RouteMode::kSjfAffinity}) {
    const auto parsed = route_mode_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(route_mode_from_string("teleport").has_value());
}

}  // namespace
}  // namespace hpcwhisk::whisk
