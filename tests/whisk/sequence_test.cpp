// Action sequences ("functions triggered by other functions", Sec. II)
// and completion callbacks.

#include <gtest/gtest.h>

#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::whisk {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  FunctionRegistry registry;
  Controller controller{sim, broker, registry};
  std::unique_ptr<Invoker> invoker;

  Fixture() {
    invoker = std::make_unique<Invoker>(sim, broker, registry, controller,
                                        Invoker::Config{}, Rng{7});
  }

  void chain(const std::string& name, const std::string& next,
             SimTime duration = SimTime::millis(20)) {
    FunctionSpec spec = fixed_duration_function(name, duration);
    spec.next = next;
    registry.put(spec);
  }
};

TEST(Sequence, ChainsNextFunctionOnCompletion) {
  Fixture f;
  f.chain("extract", "transform");
  f.chain("transform", "load");
  f.chain("load", "");
  f.invoker->start();
  const auto result = f.controller.submit("extract");
  ASSERT_TRUE(result.accepted);
  f.sim.run_until(SimTime::minutes(1));
  // All three stages completed; 2 chained invocations were created.
  EXPECT_EQ(f.controller.counters().sequence_invocations, 2u);
  EXPECT_EQ(f.controller.counters().completed, 3u);
  std::size_t completed = 0;
  for (const auto& rec : f.controller.activations()) {
    if (rec.state == ActivationState::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, 3u);
}

TEST(Sequence, NoChainOnFailure) {
  Fixture f;
  f.chain("a", "b");
  f.chain("b", "");
  // No invoker at all: "a" is rejected (503), never chains.
  const auto result = f.controller.submit("a");
  EXPECT_FALSE(result.accepted);
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(f.controller.counters().sequence_invocations, 0u);
}

TEST(Sequence, NoChainOnTimeout) {
  Fixture f;
  FunctionSpec slow = fixed_duration_function("slow", SimTime::minutes(10));
  slow.timeout = SimTime::seconds(30);
  slow.next = "never";
  f.registry.put(slow);
  f.chain("never", "");
  f.invoker->start();
  ASSERT_TRUE(f.controller.submit("slow").accepted);
  f.sim.run_until(SimTime::minutes(2));
  EXPECT_EQ(f.controller.counters().sequence_invocations, 0u);
}

TEST(Sequence, SurvivesWorkerChurnMidChain) {
  Fixture f;
  f.chain("first", "second", SimTime::seconds(30));
  f.chain("second", "", SimTime::millis(20));
  f.invoker->start();
  ASSERT_TRUE(f.controller.submit("first").accepted);
  // Drain the only invoker mid-execution of "first"; a replacement
  // arrives and both stages still complete.
  f.sim.run_until(SimTime::seconds(10));
  f.invoker->sigterm([] {});
  auto replacement = std::make_unique<Invoker>(
      f.sim, f.broker, f.registry, f.controller, Invoker::Config{}, Rng{8});
  replacement->start();
  f.sim.run_until(SimTime::minutes(3));
  EXPECT_EQ(f.controller.counters().sequence_invocations, 1u);
  EXPECT_EQ(f.controller.counters().completed, 2u);
}

TEST(CompletionCallback, FiresOnceOnTerminalState) {
  Fixture f;
  f.registry.put(fixed_duration_function("fn", SimTime::millis(10)));
  f.invoker->start();
  const auto result = f.controller.submit("fn");
  int fired = 0;
  ActivationState seen{};
  f.controller.on_completion(result.activation,
                             [&](const ActivationRecord& rec) {
                               ++fired;
                               seen = rec.state;
                             });
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seen, ActivationState::kCompleted);
}

TEST(CompletionCallback, ImmediateIfAlreadyTerminal) {
  Fixture f;
  f.registry.put(fixed_duration_function("fn", SimTime::millis(10)));
  f.invoker->start();
  const auto result = f.controller.submit("fn");
  f.sim.run_until(SimTime::minutes(1));
  int fired = 0;
  f.controller.on_completion(result.activation,
                             [&](const ActivationRecord&) { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(CompletionCallback, FiresOnTimeoutToo) {
  Fixture f;
  FunctionSpec fn = fixed_duration_function("fn", SimTime::millis(10));
  fn.timeout = SimTime::seconds(10);
  f.registry.put(fn);
  // No invoker started: accepted activation times out.
  f.controller.register_invoker();  // healthy entry but nobody pulls
  const auto result = f.controller.submit("fn");
  ASSERT_TRUE(result.accepted);
  ActivationState seen{};
  f.controller.on_completion(result.activation,
                             [&](const ActivationRecord& rec) {
                               seen = rec.state;
                             });
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(seen, ActivationState::kTimedOut);
}

TEST(CompletionCallback, MultipleCallbacksAllFire) {
  Fixture f;
  f.registry.put(fixed_duration_function("fn", SimTime::millis(10)));
  f.invoker->start();
  const auto result = f.controller.submit("fn");
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    f.controller.on_completion(result.activation,
                               [&](const ActivationRecord&) { ++fired; });
  }
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace hpcwhisk::whisk
