// Federation failover under chaos: cluster 0 loses its pilot-held nodes
// to a crash burst mid-window (fault::ChaosEngine, embedded through
// HpcWhiskSystem::Config::faults). The gateway must reroute traffic to
// the surviving sibling, and the federation's cloud-offload fraction
// must stay below the single-cluster Alg. 1 baseline facing the same
// faults at the same QPS.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hpcwhisk/core/job_manager.hpp"
#include "hpcwhisk/fed/federated_gateway.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"

namespace hpcwhisk::fed {
namespace {

using sim::SimTime;

// Repeated node-crash waves between minutes 6 and 10: fresh pilots keep
// dying, so the cluster stays effectively dead for the burst window.
fault::FaultPlan crash_burst() {
  fault::FaultPlan plan;
  for (int wave = 0; wave < 8; ++wave) {
    for (int k = 0; k < 4; ++k) {
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::kNodeCrash;
      ev.at = SimTime::minutes(6) + SimTime::seconds(30) * wave;
      ev.grace = SimTime::seconds(2);
      ev.outage = SimTime::minutes(5);
      plan.add(ev);
    }
  }
  return plan;
}

struct RunStats {
  double cloud_fraction{0.0};
  std::vector<std::uint64_t> per_cluster;
  FederatedGateway::Counters counters;
};

RunStats run(std::size_t clusters, std::uint64_t seed, FedPolicy policy) {
  sim::Simulation simulation;
  FederatedGateway::Config cfg;
  cfg.policy = policy;
  cfg.seed = seed;
  for (std::size_t i = 0; i < clusters; ++i) {
    FederatedGateway::ClusterSpec spec;
    spec.system.seed = seed * 1000 + i;
    spec.system.slurm.node_count = 8;
    spec.system.slurm.min_pass_gap = SimTime::zero();
    spec.system.manager.fib_lengths = core::job_length_set("C1");
    spec.system.manager.fib_per_length = 3;
    spec.drive_hpc_load = false;
    if (i == 0) spec.system.faults = crash_burst();  // only c0 is hit
    cfg.clusters.push_back(std::move(spec));
  }
  FederatedGateway gateway{simulation, cfg};

  std::vector<std::string> functions;
  for (int k = 0; k < 10; ++k) {
    auto spec = whisk::fixed_duration_function("sleep-" + std::to_string(k),
                                               SimTime::seconds(2));
    functions.push_back(spec.name);
    gateway.register_function(spec);
  }
  gateway.start();
  simulation.run_until(SimTime::minutes(2));
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 4.0, .functions = functions},
      [&gateway](const std::string& fn) { (void)gateway.invoke(fn); },
      sim::Rng{seed + 101}};
  faas.start(SimTime::minutes(12));
  simulation.run_until(SimTime::minutes(14));

  RunStats out;
  out.per_cluster = gateway.per_cluster_calls();
  out.counters = gateway.counters();
  out.cloud_fraction =
      gateway.counters().invocations == 0
          ? 0.0
          : static_cast<double>(gateway.counters().cloud_calls) /
                static_cast<double>(gateway.counters().invocations);
  return out;
}

TEST(FedFailover, SiblingAbsorbsCrashedClusterTraffic) {
  // Round-robin is supply-blind, so it keeps probing the dead cluster:
  // this is the policy that exercises the 503 -> cool-down -> spillover
  // machinery under real chaos.
  const RunStats fed = run(2, 1, FedPolicy::kRoundRobin);
  // The burst actually bit: cluster 0 rejected calls and the gateway
  // spilled them rather than dropping or immediately offloading.
  EXPECT_GT(fed.counters.rejections_seen, 0u);
  EXPECT_GT(fed.counters.spillovers, 0u);
  EXPECT_GT(fed.counters.cooldown_skips, 0u);
  // With cluster 0 dead from minute 6 on, the surviving sibling must
  // carry the strict majority of placed calls.
  ASSERT_EQ(fed.per_cluster.size(), 2u);
  EXPECT_GT(fed.per_cluster[1], fed.per_cluster[0]);
  EXPECT_GT(fed.counters.cluster_calls, 0u);
}

TEST(FedFailover, SnapshotPoliciesRouteAroundDeadClusterWithoutProbes) {
  // Power-of-two reads the health snapshot: a cluster with zero healthy
  // invokers scores infinitely bad, so traffic shifts without the
  // gateway ever having to eat a 503 from it.
  const RunStats fed = run(2, 1, FedPolicy::kPowerOfTwo);
  ASSERT_EQ(fed.per_cluster.size(), 2u);
  EXPECT_GT(fed.per_cluster[1], fed.per_cluster[0]);
  EXPECT_LT(fed.counters.rejections_seen, 10u);  // at most snapshot-lag noise
}

TEST(FedFailover, FederationOffloadsLessThanSingleClusterBaseline) {
  const RunStats fed = run(2, 1, FedPolicy::kPowerOfTwo);
  const RunStats baseline = run(1, 1, FedPolicy::kPowerOfTwo);
  // Alone, the crashed cluster can only shed to the commercial cloud for
  // the whole burst; federated, the sibling absorbs most of it.
  EXPECT_GT(baseline.cloud_fraction, 0.05);
  EXPECT_LT(fed.cloud_fraction, baseline.cloud_fraction);
}

}  // namespace
}  // namespace hpcwhisk::fed
