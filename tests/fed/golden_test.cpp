// Federation determinism goldens: a full federated scenario — two
// clusters with their own HPC background workloads, pilot supplies and
// per-cluster seeds, an open-loop FaaS stream through the gateway — is a
// pure function of (config, seed). The gateway's decision log (one line
// per routed call) is hashed with FNV-1a; serial execution and
// exec::parallel_trials must produce byte-identical logs, trial for
// trial, and the flushed output streams must match byte for byte.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "hpcwhisk/core/job_manager.hpp"
#include "hpcwhisk/exec/parallel_trials.hpp"
#include "hpcwhisk/fed/federated_gateway.hpp"
#include "hpcwhisk/obs/trace.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"

namespace hpcwhisk::fed {
namespace {

using sim::SimTime;

struct TrialConfig {
  std::uint64_t seed{1};
  FedPolicy policy{FedPolicy::kPowerOfTwo};
  std::size_t clusters{2};
};

// One complete federated run; returns the FNV-1a digest of the decision
// log and writes it to the trial's stream (the byte-identity probe).
std::uint64_t run_trial(const TrialConfig& tc, std::ostream& os) {
  sim::Simulation simulation;
  FederatedGateway::Config cfg;
  cfg.policy = tc.policy;
  cfg.seed = tc.seed;
  cfg.log_decisions = true;
  for (std::size_t i = 0; i < tc.clusters; ++i) {
    FederatedGateway::ClusterSpec spec;
    spec.system.seed = tc.seed * 1000 + i;
    spec.system.slurm.node_count = 8;
    spec.system.slurm.min_pass_gap = SimTime::zero();
    spec.system.manager.fib_lengths = core::job_length_set("C1");
    spec.system.manager.fib_per_length = 2;
    // Scale the calibrated generator down to the 8-node toy cluster:
    // small jobs, short limits, shallow backlog — real HPC churn that
    // still leaves idle holes for pilots.
    spec.hpc_load.backlog_target = 3;
    spec.hpc_load.max_submits_per_tick = 1;
    spec.hpc_load.size_buckets = {{1, 2, 1.0}};
    spec.hpc_load.limit_scale = 0.05;
    cfg.clusters.push_back(std::move(spec));
  }
  FederatedGateway gateway{simulation, cfg};

  std::vector<std::string> functions;
  for (int k = 0; k < 10; ++k) {
    auto spec = whisk::fixed_duration_function("sleep-" + std::to_string(k),
                                               SimTime::seconds(2));
    functions.push_back(spec.name);
    gateway.register_function(spec);
  }
  gateway.start();
  simulation.run_until(SimTime::minutes(2));

  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 4.0, .poisson = true, .functions = functions},
      [&gateway](const std::string& fn) { (void)gateway.invoke(fn); },
      sim::Rng{tc.seed + 101}};
  faas.start(SimTime::minutes(10));
  simulation.run_until(SimTime::minutes(12));

  const std::uint64_t digest = obs::fnv1a(gateway.decision_log());
  os << tc.seed << '/' << to_string(tc.policy) << ' ' << digest << '\n';
  return digest;
}

std::vector<TrialConfig> sweep() {
  std::vector<TrialConfig> configs;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    configs.push_back({seed, FedPolicy::kPowerOfTwo});
  }
  configs.push_back({1, FedPolicy::kRoundRobin});
  configs.push_back({1, FedPolicy::kLeastOutstanding});
  return configs;
}

TEST(FedGolden, SerialAndParallelRunsAreByteIdentical) {
  const auto configs = sweep();
  std::ostringstream serial_out;
  const std::vector<std::uint64_t> serial =
      exec::parallel_trials(configs, run_trial, 1, serial_out);
  std::ostringstream parallel_out;
  const std::vector<std::uint64_t> parallel =
      exec::parallel_trials(configs, run_trial, 4, parallel_out);

  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i])
        << "decision-log hash diverged for trial " << i;
  }
  EXPECT_EQ(serial_out.str(), parallel_out.str());
  EXPECT_FALSE(serial_out.str().empty());
}

TEST(FedGolden, SameSeedReproducesDifferentSeedsDiverge) {
  std::ostringstream sink;
  const std::uint64_t a1 = run_trial({5, FedPolicy::kPowerOfTwo}, sink);
  const std::uint64_t a2 = run_trial({5, FedPolicy::kPowerOfTwo}, sink);
  const std::uint64_t b = run_trial({6, FedPolicy::kPowerOfTwo}, sink);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(FedGolden, PoliciesProduceDistinctDecisionLogs) {
  // Three clusters: with only two, power-of-two always samples both and
  // degenerates to least-loaded, which can coincide with
  // least-outstanding decision for decision.
  std::ostringstream sink;
  const std::uint64_t rr =
      run_trial({1, FedPolicy::kRoundRobin, 3}, sink);
  const std::uint64_t lo =
      run_trial({1, FedPolicy::kLeastOutstanding, 3}, sink);
  const std::uint64_t p2c = run_trial({1, FedPolicy::kPowerOfTwo, 3}, sink);
  // Same workload, same clusters: only the routing policy differs, and
  // the logs must reflect it.
  EXPECT_NE(rr, p2c);
  EXPECT_NE(lo, p2c);
}

}  // namespace
}  // namespace hpcwhisk::fed
