// FederatedGateway unit tests: policy selection, the per-cluster
// cool-down table, spillover order, bounded-staleness health snapshots,
// and gateway-level observability. Clusters are owned but never started:
// invokers are registered directly on each cluster's controller, so every
// routing decision is exact and hand-checkable.

#include "hpcwhisk/fed/federated_gateway.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::fed {
namespace {

using sim::SimTime;
using sim::Simulation;

FederatedGateway::Config make_config(std::size_t clusters, FedPolicy policy) {
  FederatedGateway::Config cfg;
  cfg.policy = policy;
  cfg.health_refresh = SimTime::zero();  // tests refresh by hand
  cfg.log_decisions = true;
  for (std::size_t i = 0; i < clusters; ++i) {
    FederatedGateway::ClusterSpec spec;
    spec.system.seed = i + 1;
    spec.system.slurm.node_count = 4;
    spec.drive_hpc_load = false;
    cfg.clusters.push_back(std::move(spec));
  }
  return cfg;
}

whisk::FunctionSpec sleep_fn() {
  return whisk::fixed_duration_function("fn", SimTime::millis(10));
}

TEST(FederatedGateway, RoundRobinAlternates) {
  Simulation sim;
  FederatedGateway gw{sim, make_config(2, FedPolicy::kRoundRobin)};
  gw.register_function(sleep_fn());
  gw.cluster(0).controller().register_invoker();
  gw.cluster(1).controller().register_invoker();
  gw.refresh_health();

  for (int i = 0; i < 4; ++i) {
    const auto r = gw.invoke("fn");
    EXPECT_FALSE(r.cloud);
    EXPECT_EQ(r.cluster, static_cast<std::size_t>(i % 2));
  }
  EXPECT_EQ(gw.per_cluster_calls()[0], 2u);
  EXPECT_EQ(gw.per_cluster_calls()[1], 2u);
  EXPECT_EQ(gw.counters().cloud_calls, 0u);
}

TEST(FederatedGateway, LeastOutstandingPrefersIdleCluster) {
  Simulation sim;
  FederatedGateway gw{sim, make_config(2, FedPolicy::kLeastOutstanding)};
  gw.register_function(sleep_fn());
  gw.cluster(0).controller().register_invoker();
  gw.cluster(1).controller().register_invoker();
  // Load cluster 0 behind the gateway's back: 5 accepted activations
  // nobody executes (no live invoker pulls them).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(gw.cluster(0).controller().submit("fn").accepted);
  }
  gw.refresh_health();
  EXPECT_EQ(gw.health()[0].outstanding, 5u);
  EXPECT_EQ(gw.health()[1].outstanding, 0u);

  const auto r = gw.invoke("fn");
  EXPECT_FALSE(r.cloud);
  EXPECT_EQ(r.cluster, 1u);
}

TEST(FederatedGateway, SnapshotIsBoundedStaleNotLive) {
  Simulation sim;
  FederatedGateway gw{sim, make_config(2, FedPolicy::kLeastOutstanding)};
  gw.register_function(sleep_fn());
  gw.cluster(0).controller().register_invoker();
  const whisk::InvokerId inv1 = gw.cluster(1).controller().register_invoker();
  // Tilt the snapshot towards cluster 1, then change live state without
  // refreshing: the gateway must keep routing on the stale snapshot.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(gw.cluster(0).controller().submit("fn").accepted);
  }
  gw.refresh_health();
  gw.cluster(1).controller().begin_drain(inv1);  // live: c1 unroutable

  // The stale snapshot says c1 is the idle cluster; the live submit
  // 503s, so the call spills to c0 and c1 enters cool-down.
  const auto r = gw.invoke("fn");
  EXPECT_FALSE(r.cloud);
  EXPECT_EQ(r.cluster, 0u);
  EXPECT_EQ(r.spills, 1u);
  EXPECT_EQ(gw.counters().rejections_seen, 1u);
  EXPECT_EQ(gw.counters().spillovers, 1u);
  EXPECT_TRUE(gw.cooling(1, sim.now()));
  EXPECT_FALSE(gw.cooling(0, sim.now()));
}

TEST(FederatedGateway, CooldownTableGeneralizesAlg1) {
  Simulation sim;
  FederatedGateway gw{sim, make_config(2, FedPolicy::kRoundRobin)};
  gw.register_function(sleep_fn());
  gw.refresh_health();

  // No invokers anywhere: primary 503s, spill 503s, cloud takes it.
  const auto r1 = gw.invoke("fn");
  EXPECT_TRUE(r1.cloud);
  EXPECT_EQ(r1.spills, 2u);
  EXPECT_EQ(gw.counters().rejections_seen, 2u);
  EXPECT_EQ(gw.counters().cloud_calls, 1u);
  EXPECT_TRUE(gw.cooling(0, sim.now()));
  EXPECT_TRUE(gw.cooling(1, sim.now()));

  // Inside the cool-down neither cluster is probed again (Alg. 1's
  // "don't hammer a rejecting deployment", per cluster).
  sim.run_until(SimTime::seconds(30));
  const auto r2 = gw.invoke("fn");
  EXPECT_TRUE(r2.cloud);
  EXPECT_EQ(r2.spills, 0u);
  EXPECT_EQ(gw.counters().rejections_seen, 2u);  // unchanged
  EXPECT_EQ(gw.counters().cooldown_skips, 2u);

  // At exactly last_503 + cooldown the cluster is still cooling (the
  // same boundary the Alg. 1 wrapper pins); one tick later it is not.
  EXPECT_TRUE(gw.cooling(0, SimTime::seconds(60)));
  EXPECT_FALSE(gw.cooling(0, SimTime::seconds(60) + SimTime::micros(1)));

  // After expiry a healthy cluster takes traffic again.
  sim.run_until(SimTime::seconds(61));
  gw.cluster(1).controller().register_invoker();
  gw.refresh_health();
  const auto r3 = gw.invoke("fn");
  EXPECT_FALSE(r3.cloud);
  EXPECT_EQ(r3.cluster, 1u);
}

TEST(FederatedGateway, SpilloverPrefersHealthiestSnapshot) {
  Simulation sim;
  FederatedGateway gw{sim, make_config(3, FedPolicy::kRoundRobin)};
  gw.register_function(sleep_fn());
  // c0: no invokers (will 503). c1: one invoker, heavy backlog.
  // c2: two invokers, idle — the healthiest sibling.
  gw.cluster(1).controller().register_invoker();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(gw.cluster(1).controller().submit("fn").accepted);
  }
  gw.cluster(2).controller().register_invoker();
  gw.cluster(2).controller().register_invoker();
  gw.refresh_health();

  // Round-robin starts at c0, which rejects; the spill must go to c2
  // (lowest load score), not the next-in-rotation c1.
  const auto r = gw.invoke("fn");
  EXPECT_FALSE(r.cloud);
  EXPECT_EQ(r.cluster, 2u);
  EXPECT_EQ(r.spills, 1u);
}

TEST(FederatedGateway, PowerOfTwoPicksLowerLoadedOfTwo) {
  Simulation sim;
  auto cfg = make_config(2, FedPolicy::kPowerOfTwo);
  cfg.seed = 7;
  FederatedGateway gw{sim, cfg};
  gw.register_function(sleep_fn());
  gw.cluster(0).controller().register_invoker();
  gw.cluster(1).controller().register_invoker();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(gw.cluster(0).controller().submit("fn").accepted);
  }
  gw.refresh_health();
  // With two clusters, power-of-two always compares both: every call
  // must land on the idle cluster 1.
  for (int i = 0; i < 5; ++i) {
    const auto r = gw.invoke("fn");
    EXPECT_FALSE(r.cloud);
    EXPECT_EQ(r.cluster, 1u);
  }
}

TEST(FederatedGateway, RegisterFunctionReachesEveryRegistry) {
  Simulation sim;
  FederatedGateway gw{sim, make_config(2, FedPolicy::kRoundRobin)};
  gw.register_function(sleep_fn());
  EXPECT_NE(gw.cluster(0).functions().find("fn"), nullptr);
  EXPECT_NE(gw.cluster(1).functions().find("fn"), nullptr);
  EXPECT_NE(gw.cloud_functions().find("fn"), nullptr);
}

TEST(FederatedGateway, EmitsRoutingInstantsAndCooldownSpans) {
  obs::Observability obs;
  Simulation sim;
  auto cfg = make_config(2, FedPolicy::kRoundRobin);
  cfg.obs = &obs;
  FederatedGateway gw{sim, cfg};
  gw.register_function(sleep_fn());
  gw.refresh_health();

  (void)gw.invoke("fn");  // all 503 -> cooldowns open, cloud offload
  sim.run_until(SimTime::seconds(61));
  gw.cluster(0).controller().register_invoker();
  gw.cluster(1).controller().register_invoker();
  gw.refresh_health();
  (void)gw.invoke("fn");  // a cluster takes it; both cooldown spans close

  std::size_t routes = 0, offloads = 0, rejects = 0;
  std::size_t cooldown_begin = 0, cooldown_end = 0, cloud_spans = 0;
  for (const obs::TraceEvent& ev : obs.trace.events()) {
    const std::string_view name{ev.name};
    if (name == "fed_route") ++routes;
    if (name == "fed_offload") ++offloads;
    if (name == "fed_503") ++rejects;
    if (name == "fed_cooldown" && ev.phase == obs::Phase::kAsyncBegin)
      ++cooldown_begin;
    if (name == "fed_cooldown" && ev.phase == obs::Phase::kAsyncEnd)
      ++cooldown_end;
    if (name == "cloud_invoke" && ev.phase == obs::Phase::kAsyncBegin)
      ++cloud_spans;
  }
  EXPECT_EQ(routes, 1u);
  EXPECT_EQ(offloads, 1u);
  EXPECT_EQ(rejects, 2u);
  EXPECT_EQ(cooldown_begin, 2u);
  EXPECT_EQ(cooldown_end, 2u);  // both expired and were re-observed eligible
  EXPECT_EQ(cloud_spans, 1u);   // the shared cloud records into this sink

  obs.metrics.collect();
  EXPECT_EQ(obs.metrics.counter("fed.invocations").value(), 2u);
  EXPECT_EQ(obs.metrics.counter("fed.cloud_calls").value(), 1u);
  EXPECT_EQ(obs.metrics.counter("fed.rejections_seen").value(), 2u);
}

TEST(FederatedGateway, HealthSamplerTracksCoverage) {
  Simulation sim;
  auto cfg = make_config(2, FedPolicy::kRoundRobin);
  FederatedGateway gw{sim, cfg};
  gw.register_function(sleep_fn());
  gw.refresh_health();  // no invokers anywhere
  gw.cluster(0).controller().register_invoker();
  gw.refresh_health();  // c0 healthy
  gw.refresh_health();
  EXPECT_EQ(gw.health_samples(), 3u);
  EXPECT_EQ(gw.health_samples_any_healthy(), 2u);
  EXPECT_EQ(gw.health_samples_healthy()[0], 2u);
  EXPECT_EQ(gw.health_samples_healthy()[1], 0u);
}

}  // namespace
}  // namespace hpcwhisk::fed
