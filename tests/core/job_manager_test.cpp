#include "hpcwhisk/core/job_manager.hpp"

#include <gtest/gtest.h>

#include "hpcwhisk/core/system.hpp"

namespace hpcwhisk::core {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  whisk::FunctionRegistry registry;
  whisk::Controller controller{sim, broker, registry};
  slurm::Slurmctld ctld;

  Fixture(std::uint32_t nodes = 4)
      : ctld{sim,
             [nodes] {
               slurm::Slurmctld::Config cfg;
               cfg.node_count = nodes;
               cfg.launch_latency = SimTime::zero();
               cfg.min_pass_gap = SimTime::zero();
               return cfg;
             }(),
             default_partitions()} {
    registry.put(whisk::fixed_duration_function("fn", SimTime::millis(10)));
  }

  JobManager make_manager(JobManager::Config cfg = {}) {
    return JobManager{sim,      ctld,        broker, registry,
                      controller, std::move(cfg), Rng{5}};
  }
};

TEST(JobLengthSets, MatchThePaper) {
  EXPECT_EQ(job_length_set("A1"),
            (std::vector<SimTime>{
                SimTime::minutes(2), SimTime::minutes(4), SimTime::minutes(6),
                SimTime::minutes(8), SimTime::minutes(14), SimTime::minutes(22),
                SimTime::minutes(34), SimTime::minutes(56),
                SimTime::minutes(90)}));
  EXPECT_EQ(job_length_set("B").size(), 6u);
  EXPECT_EQ(job_length_set("C1").size(), 10u);
  EXPECT_EQ(job_length_set("C2").size(), 60u);  // 2,4,...,120
  EXPECT_EQ(job_length_set("C2").front(), SimTime::minutes(2));
  EXPECT_EQ(job_length_set("C2").back(), SimTime::minutes(120));
  EXPECT_THROW(job_length_set("Z9"), std::invalid_argument);
}

TEST(JobManager, FibKeepsPerLengthQueueDepth) {
  Fixture f{1};
  JobManager::Config cfg;
  cfg.fib_lengths = job_length_set("B");  // 6 lengths
  cfg.fib_per_length = 3;
  cfg.max_queued = 100;
  auto manager = f.make_manager(cfg);
  manager.start();
  // 1 node: one pilot starts, the rest stay queued; the queue must hold
  // 3 jobs per length minus whatever started.
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(manager.active_pilots(), 1u);
  // One pilot started; the replenish loop has already topped the queue
  // back up to 3 per length.
  EXPECT_EQ(manager.queued(), 6u * 3u);
}

TEST(JobManager, QueueNeverExceedsCap) {
  Fixture f{1};
  JobManager::Config cfg;
  cfg.fib_lengths = job_length_set("C2");  // 60 lengths x 10 = 600 > cap
  auto manager = f.make_manager(cfg);
  manager.start();
  f.sim.run_until(SimTime::minutes(2));
  EXPECT_LE(manager.queued(), 100u);
}

TEST(JobManager, ReplenishesAfterStarts) {
  Fixture f{4};
  JobManager::Config cfg;
  cfg.fib_lengths = {SimTime::minutes(10)};
  cfg.fib_per_length = 5;
  auto manager = f.make_manager(cfg);
  manager.start();
  f.sim.run_until(SimTime::minutes(1));
  // 4 pilots started on the 4 nodes; after the next replenish tick the
  // queue is back at 5.
  EXPECT_EQ(manager.active_pilots(), 4u);
  EXPECT_EQ(manager.queued(), 5u);
  EXPECT_GE(manager.counters().submitted, 9u);
}

TEST(JobManager, LongerFibJobsHaveHigherPriority) {
  Fixture f{1};
  JobManager::Config cfg;
  cfg.fib_lengths = {SimTime::minutes(2), SimTime::minutes(90)};
  cfg.fib_per_length = 1;
  auto manager = f.make_manager(cfg);
  manager.start();
  f.sim.run_until(SimTime::minutes(1));
  // The single node must run the 90-minute pilot (greedy long-first).
  ASSERT_EQ(manager.active_pilots(), 1u);
  bool found_running_90 = false;
  for (std::uint32_t n = 0; n < 1; ++n) {
    const auto& rec = f.ctld.job(f.ctld.job(1).id);
    (void)rec;
  }
  // Check via the slurm record of the running pilot.
  for (slurm::JobId id = 1; id < 10; ++id) {
    if (!f.ctld.is_known(id)) break;
    const auto& rec = f.ctld.job(id);
    if (rec.state == slurm::JobState::kRunning) {
      EXPECT_EQ(rec.spec.time_limit, SimTime::minutes(90));
      found_running_90 = true;
    }
  }
  EXPECT_TRUE(found_running_90);
}

TEST(JobManager, VarSubmitsFlexibleJobs) {
  Fixture f{2};
  JobManager::Config cfg;
  cfg.model = SupplyModel::kVar;
  cfg.var_target = 20;
  auto manager = f.make_manager(cfg);
  manager.start();
  f.sim.run_until(SimTime::minutes(5));
  // Two pilots running (one per node), queue back at 20.
  EXPECT_EQ(manager.active_pilots(), 2u);
  EXPECT_EQ(manager.queued(), 20u);
  // Their Slurm records are variable-length.
  std::size_t running_var = 0;
  for (slurm::JobId id = 1; id < 30; ++id) {
    if (!f.ctld.is_known(id)) break;
    const auto& rec = f.ctld.job(id);
    if (rec.is_active()) {
      EXPECT_EQ(rec.spec.time_min, SimTime::minutes(2));
      EXPECT_EQ(rec.spec.time_limit, SimTime::minutes(120));
      ++running_var;
    }
  }
  EXPECT_EQ(running_var, 2u);
}

TEST(JobManager, PreemptedPilotCountsAndServingDurations) {
  Fixture f{1};
  JobManager::Config cfg;
  cfg.fib_lengths = {SimTime::minutes(90)};
  cfg.fib_per_length = 1;
  cfg.warmup_median_s = 5.0;
  cfg.warmup_p95_s = 8.0;
  auto manager = f.make_manager(cfg);
  manager.start();
  f.sim.run_until(SimTime::minutes(5));
  ASSERT_EQ(manager.active_pilots(), 1u);
  // An HPC job evicts the pilot.
  slurm::JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = 1;
  spec.time_limit = SimTime::minutes(10);
  spec.actual_runtime = SimTime::minutes(10);
  f.ctld.submit(spec);
  f.sim.run_until(SimTime::minutes(8));
  EXPECT_EQ(manager.counters().preempted, 1u);
  EXPECT_EQ(manager.active_pilots(), 0u);
  ASSERT_EQ(manager.serving_durations().size(), 1u);
  // Served from ~warmup end (~5 s) until eviction at minute 5.
  EXPECT_GT(manager.serving_durations()[0], SimTime::minutes(4));
  EXPECT_LT(manager.serving_durations()[0], SimTime::minutes(6));
}

TEST(JobManager, StopCancelsQueuedPilots) {
  Fixture f{1};
  JobManager::Config cfg;
  cfg.fib_lengths = {SimTime::minutes(10)};
  cfg.fib_per_length = 5;
  auto manager = f.make_manager(cfg);
  manager.start();
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_GT(manager.queued(), 0u);
  manager.stop();
  EXPECT_EQ(manager.queued(), 0u);
  // The running pilot keeps serving.
  EXPECT_EQ(manager.active_pilots(), 1u);
  f.sim.run_until(SimTime::minutes(2));
  EXPECT_EQ(manager.queued(), 0u);  // no replenishment after stop
}

TEST(JobManager, WarmupDurationsRecorded) {
  Fixture f{2};
  auto manager = f.make_manager();
  manager.start();
  f.sim.run_until(SimTime::minutes(2));
  ASSERT_GE(manager.warmup_durations().size(), 2u);
  for (const auto w : manager.warmup_durations()) {
    EXPECT_GT(w, SimTime::zero());
    EXPECT_LT(w, SimTime::minutes(2));
  }
}

}  // namespace
}  // namespace hpcwhisk::core
