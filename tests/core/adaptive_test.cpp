// Adaptive fib-length tuning (the paper's future-work extension).

#include <gtest/gtest.h>

#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

namespace hpcwhisk::core {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(AdaptiveManager, RecomputesLengthsFromServingDurations) {
  Simulation simulation;
  HpcWhiskSystem::Config cfg;
  cfg.slurm.node_count = 32;
  cfg.manager.model = SupplyModel::kFib;
  cfg.manager.adaptive = true;
  cfg.manager.adapt_interval = SimTime::minutes(30);
  cfg.manager.adapt_min_samples = 20;
  HpcWhiskSystem system{simulation, cfg};
  trace::HpcWorkloadGenerator workload{simulation, system.slurm(), {},
                                       sim::Rng{3}};
  workload.start();
  system.start();
  const auto before = system.manager().fib_lengths();
  simulation.run_until(SimTime::hours(6));
  EXPECT_GE(system.manager().adaptations(), 1u);
  const auto& after = system.manager().fib_lengths();
  // Adapted set: sorted, even-minute, within [2, 120].
  EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  for (const auto len : after) {
    EXPECT_GE(len, SimTime::minutes(2));
    EXPECT_LE(len, SimTime::minutes(120));
    EXPECT_EQ(len.ticks() % SimTime::minutes(2).ticks(), 0);
  }
  // On this churny cluster the adapted set differs from A1.
  EXPECT_NE(after, before);
}

TEST(AdaptiveManager, DisabledByDefault) {
  Simulation simulation;
  HpcWhiskSystem::Config cfg;
  cfg.slurm.node_count = 8;
  HpcWhiskSystem system{simulation, cfg};
  trace::HpcWorkloadGenerator workload{simulation, system.slurm(), {},
                                       sim::Rng{4}};
  workload.start();
  system.start();
  simulation.run_until(SimTime::hours(4));
  EXPECT_EQ(system.manager().adaptations(), 0u);
  EXPECT_EQ(system.manager().fib_lengths(), job_length_set("A1"));
}

TEST(AdaptiveManager, WaitsForMinimumSamples) {
  Simulation simulation;
  HpcWhiskSystem::Config cfg;
  cfg.slurm.node_count = 2;
  cfg.manager.adaptive = true;
  cfg.manager.adapt_interval = SimTime::minutes(10);
  cfg.manager.adapt_min_samples = 100000;  // unreachable
  HpcWhiskSystem system{simulation, cfg};
  system.start();
  simulation.run_until(SimTime::hours(2));
  EXPECT_EQ(system.manager().adaptations(), 0u);
}

}  // namespace
}  // namespace hpcwhisk::core
