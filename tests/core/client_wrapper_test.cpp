#include "hpcwhisk/core/client_wrapper.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::core {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  whisk::FunctionRegistry registry;
  whisk::Controller controller{sim, broker, registry};
  cloud::LambdaService commercial{sim, registry, {}, Rng{2}};
  ClientWrapper wrapper{sim, controller, commercial, {}};

  Fixture() {
    registry.put(whisk::fixed_duration_function("fn", SimTime::millis(10)));
  }
};

TEST(ClientWrapper, UsesHpcWhiskWhenInvokersExist) {
  Fixture f;
  f.controller.register_invoker();
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kHpcWhisk);
  EXPECT_EQ(f.wrapper.counters().hpcwhisk_calls, 1u);
  EXPECT_EQ(f.wrapper.counters().commercial_calls, 0u);
}

TEST(ClientWrapper, FallsBackOn503) {
  Fixture f;  // no invokers: every submit 503s
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kCommercial);
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 1u);
  EXPECT_EQ(f.wrapper.counters().commercial_calls, 1u);
  // The commercial call is tracked by the Lambda model.
  EXPECT_EQ(f.commercial.invocations().size(), 1u);
}

TEST(ClientWrapper, StaysOnCommercialDuringWindow) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503 at t=0
  // Even though an invoker appears, within 60 s the wrapper offloads
  // without asking the controller (Alg. 1's Last_503 check).
  f.controller.register_invoker();
  f.sim.run_until(SimTime::seconds(30));
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kCommercial);
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 1u);  // no new 503 probe
}

TEST(ClientWrapper, RetriesClusterAfterWindow) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503 at t=0
  f.sim.run_until(SimTime::seconds(61));
  // An invoker is healthy when the window expires (fresh registration:
  // its heartbeat clock starts now).
  f.controller.register_invoker();
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kHpcWhisk);
}

TEST(ClientWrapper, RepeatedOutagesKeepExtendingWindow) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503, window opens
  f.sim.run_until(SimTime::seconds(61));
  (void)f.wrapper.invoke("fn");  // probes cluster: still no invoker -> 503
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 2u);
  f.sim.run_until(SimTime::seconds(90));
  // Inside the renewed window.
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kCommercial);
}

TEST(ClientWrapper, NeverDropsACall) {
  Fixture f;
  // Flap availability; every call must land somewhere.
  whisk::InvokerId id = f.controller.register_invoker();
  for (int minute = 0; minute < 10; ++minute) {
    for (int i = 0; i < 10; ++i) (void)f.wrapper.invoke("fn");
    if (minute % 2 == 0) {
      f.controller.begin_drain(id);
      f.controller.deregister(id);
    } else {
      id = f.controller.register_invoker();
    }
    f.sim.run_until(SimTime::minutes(minute + 1));
  }
  const auto& c = f.wrapper.counters();
  EXPECT_EQ(c.hpcwhisk_calls + c.commercial_calls, 100u);
}

}  // namespace
}  // namespace hpcwhisk::core
