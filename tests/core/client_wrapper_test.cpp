#include "hpcwhisk/core/client_wrapper.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::core {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  whisk::FunctionRegistry registry;
  whisk::Controller controller{sim, broker, registry};
  cloud::LambdaService commercial{sim, registry, {}, Rng{2}};
  ClientWrapper wrapper{sim, controller, commercial, {}};

  Fixture() {
    registry.put(whisk::fixed_duration_function("fn", SimTime::millis(10)));
  }
};

TEST(ClientWrapper, UsesHpcWhiskWhenInvokersExist) {
  Fixture f;
  f.controller.register_invoker();
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kHpcWhisk);
  EXPECT_EQ(f.wrapper.counters().hpcwhisk_calls, 1u);
  EXPECT_EQ(f.wrapper.counters().commercial_calls, 0u);
}

TEST(ClientWrapper, FallsBackOn503) {
  Fixture f;  // no invokers: every submit 503s
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kCommercial);
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 1u);
  EXPECT_EQ(f.wrapper.counters().commercial_calls, 1u);
  // The commercial call is tracked by the Lambda model.
  EXPECT_EQ(f.commercial.invocations().size(), 1u);
}

TEST(ClientWrapper, StaysOnCommercialDuringWindow) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503 at t=0
  // Even though an invoker appears, within 60 s the wrapper offloads
  // without asking the controller (Alg. 1's Last_503 check).
  f.controller.register_invoker();
  f.sim.run_until(SimTime::seconds(30));
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kCommercial);
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 1u);  // no new 503 probe
}

TEST(ClientWrapper, RetriesClusterAfterWindow) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503 at t=0
  f.sim.run_until(SimTime::seconds(61));
  // An invoker is healthy when the window expires (fresh registration:
  // its heartbeat clock starts now).
  f.controller.register_invoker();
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kHpcWhisk);
}

TEST(ClientWrapper, RepeatedOutagesKeepExtendingWindow) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503, window opens
  f.sim.run_until(SimTime::seconds(61));
  (void)f.wrapper.invoke("fn");  // probes cluster: still no invoker -> 503
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 2u);
  f.sim.run_until(SimTime::seconds(90));
  // Inside the renewed window.
  const auto result = f.wrapper.invoke("fn");
  EXPECT_EQ(result.backend, ClientWrapper::Backend::kCommercial);
}

TEST(ClientWrapper, Last503StartsUnset) {
  Fixture f;
  EXPECT_FALSE(f.wrapper.last_503().has_value());
  f.controller.register_invoker();
  (void)f.wrapper.invoke("fn");
  // A successful HPC-Whisk call never opens a window.
  EXPECT_FALSE(f.wrapper.last_503().has_value());
  EXPECT_EQ(f.wrapper.counters().windows_opened, 0u);
}

// Pins the boundary semantics: a call at exactly last_503 +
// fallback_window is still offloaded (Alg. 1's check is `<=`); the
// cluster is retried strictly after the window, from the first tick on.
TEST(ClientWrapper, RetryBoundaryIsExactWindowEdge) {
  Fixture f;
  (void)f.wrapper.invoke("fn");  // 503 at t=0: window = [0, 60 s]
  ASSERT_TRUE(f.wrapper.last_503().has_value());
  EXPECT_EQ(*f.wrapper.last_503(), SimTime::zero());
  EXPECT_EQ(f.wrapper.counters().windows_opened, 1u);

  f.sim.run_until(SimTime::seconds(60));  // exactly last_503 + window
  EXPECT_TRUE(f.wrapper.in_fallback_window(f.sim.now()));
  const auto at_edge = f.wrapper.invoke("fn");
  EXPECT_EQ(at_edge.backend, ClientWrapper::Backend::kCommercial);
  EXPECT_EQ(f.wrapper.counters().rejections_seen, 1u);  // no probe

  // One tick past the edge the wrapper probes the cluster again.
  f.controller.register_invoker();
  f.sim.run_until(SimTime::seconds(60) + SimTime::micros(1));
  EXPECT_FALSE(f.wrapper.in_fallback_window(f.sim.now()));
  const auto past_edge = f.wrapper.invoke("fn");
  EXPECT_EQ(past_edge.backend, ClientWrapper::Backend::kHpcWhisk);
  // A successful retry closes the window without opening a new one.
  EXPECT_EQ(f.wrapper.counters().windows_opened, 1u);
}

TEST(ClientWrapper, EmitsWindowSpansAndOffloadInstants) {
  obs::Observability obs;
  Simulation sim;
  mq::Broker broker;
  whisk::FunctionRegistry registry;
  whisk::Controller controller{sim, broker, registry};
  cloud::LambdaService commercial{sim, registry, {.obs = &obs}, Rng{2}};
  ClientWrapper wrapper{sim, controller, commercial, {.obs = &obs}};
  registry.put(whisk::fixed_duration_function("fn", SimTime::millis(10)));

  (void)wrapper.invoke("fn");  // 503 -> window opens, offload #1
  sim.run_until(SimTime::seconds(30));
  (void)wrapper.invoke("fn");  // inside window, offload #2
  sim.run_until(SimTime::seconds(61));
  controller.register_invoker();  // fresh heartbeat clock: healthy now
  (void)wrapper.invoke("fn");  // window expired -> span closes, HPC call

  std::size_t window_begin = 0, window_end = 0, offloads = 0, cloud_spans = 0;
  SimTime end_at;
  for (const obs::TraceEvent& ev : obs.trace.events()) {
    const std::string_view name{ev.name};
    if (name == "fallback_window" && ev.phase == obs::Phase::kAsyncBegin)
      ++window_begin;
    if (name == "fallback_window" && ev.phase == obs::Phase::kAsyncEnd) {
      ++window_end;
      end_at = ev.at;
    }
    if (name == "offload" && ev.phase == obs::Phase::kInstant) ++offloads;
    if (name == "cloud_invoke" && ev.phase == obs::Phase::kAsyncBegin)
      ++cloud_spans;
  }
  EXPECT_EQ(window_begin, 1u);
  EXPECT_EQ(window_end, 1u);
  // The span closes at the semantic expiry, not at discovery time.
  EXPECT_EQ(end_at, SimTime::seconds(60));
  EXPECT_EQ(offloads, 2u);
  EXPECT_EQ(cloud_spans, 2u);

  obs.metrics.collect();
  EXPECT_EQ(obs.metrics.counter("client.windows_opened").value(), 1u);
  EXPECT_EQ(obs.metrics.counter("cloud.invocations").value(), 2u);
}

TEST(ClientWrapper, NeverDropsACall) {
  Fixture f;
  // Flap availability; every call must land somewhere.
  whisk::InvokerId id = f.controller.register_invoker();
  for (int minute = 0; minute < 10; ++minute) {
    for (int i = 0; i < 10; ++i) (void)f.wrapper.invoke("fn");
    if (minute % 2 == 0) {
      f.controller.begin_drain(id);
      f.controller.deregister(id);
    } else {
      id = f.controller.register_invoker();
    }
    f.sim.run_until(SimTime::minutes(minute + 1));
  }
  const auto& c = f.wrapper.counters();
  EXPECT_EQ(c.hpcwhisk_calls + c.commercial_calls, 100u);
}

}  // namespace
}  // namespace hpcwhisk::core
