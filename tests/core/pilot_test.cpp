#include "hpcwhisk/core/pilot.hpp"

#include <gtest/gtest.h>

#include "hpcwhisk/core/system.hpp"

namespace hpcwhisk::core {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  mq::Broker broker;
  whisk::FunctionRegistry registry;
  whisk::Controller controller{sim, broker, registry};
  slurm::Slurmctld ctld;

  Fixture()
      : ctld{sim,
             [] {
               slurm::Slurmctld::Config cfg;
               cfg.node_count = 2;
               cfg.launch_latency = SimTime::zero();
               cfg.min_pass_gap = SimTime::zero();
               return cfg;
             }(),
             default_partitions()} {
    registry.put(whisk::fixed_duration_function("fn", SimTime::millis(10)));
  }

  std::unique_ptr<whisk::Invoker> make_invoker() {
    return std::make_unique<whisk::Invoker>(sim, broker, registry, controller,
                                            whisk::Invoker::Config{}, Rng{3});
  }

  slurm::JobId submit_pilot_job() {
    slurm::JobSpec spec;
    spec.partition = "pilot";
    spec.num_nodes = 1;
    spec.time_limit = SimTime::minutes(90);
    spec.actual_runtime = SimTime::max();
    return ctld.submit(spec);
  }
};

TEST(PilotJob, RegistersAfterWarmup) {
  Fixture f;
  const auto job = f.submit_pilot_job();
  f.sim.run_until(SimTime::seconds(1));
  PilotJob pilot{f.sim, f.ctld, job, f.make_invoker(), SimTime::seconds(15)};
  EXPECT_EQ(pilot.phase(), PilotJob::Phase::kWarmingUp);
  EXPECT_EQ(f.controller.healthy_count(), 0u);
  f.sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(pilot.phase(), PilotJob::Phase::kServing);
  EXPECT_EQ(f.controller.healthy_count(), 1u);
  EXPECT_EQ(pilot.serving_since(), SimTime::seconds(16));
}

TEST(PilotJob, SigtermDuringWarmupExitsJobImmediately) {
  Fixture f;
  const auto job = f.submit_pilot_job();
  f.sim.run_until(SimTime::seconds(1));
  PilotJob pilot{f.sim, f.ctld, job, f.make_invoker(), SimTime::seconds(30)};
  pilot.on_sigterm();
  EXPECT_EQ(pilot.phase(), PilotJob::Phase::kExited);
  // The Slurm job was released (no grace consumed).
  EXPECT_FALSE(f.ctld.job(job).is_active());
  f.sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(f.controller.healthy_count(), 0u);  // never registered
}

TEST(PilotJob, SigtermWhileServingDrainsAndExitsEarly) {
  Fixture f;
  const auto job = f.submit_pilot_job();
  f.sim.run_until(SimTime::seconds(1));
  PilotJob pilot{f.sim, f.ctld, job, f.make_invoker(), SimTime::seconds(10)};
  f.sim.run_until(SimTime::seconds(30));
  ASSERT_EQ(pilot.phase(), PilotJob::Phase::kServing);
  pilot.on_sigterm();
  // Idle invoker: drain completes synchronously.
  EXPECT_EQ(pilot.phase(), PilotJob::Phase::kExited);
  EXPECT_FALSE(f.ctld.job(job).is_active());
  EXPECT_EQ(f.controller.healthy_count(), 0u);
}

TEST(PilotJob, JobEndWithoutSigtermHardKills) {
  Fixture f;
  const auto job = f.submit_pilot_job();
  f.sim.run_until(SimTime::seconds(1));
  PilotJob pilot{f.sim, f.ctld, job, f.make_invoker(), SimTime::seconds(5)};
  f.sim.run_until(SimTime::seconds(20));
  ASSERT_EQ(pilot.phase(), PilotJob::Phase::kServing);
  pilot.on_job_end();  // e.g. node failure: no grace, no drain
  EXPECT_EQ(pilot.phase(), PilotJob::Phase::kExited);
  EXPECT_TRUE(pilot.invoker().dead());
}

TEST(PilotJob, DuplicateSigtermIsIdempotent) {
  Fixture f;
  const auto job = f.submit_pilot_job();
  f.sim.run_until(SimTime::seconds(1));
  PilotJob pilot{f.sim, f.ctld, job, f.make_invoker(), SimTime::seconds(5)};
  f.sim.run_until(SimTime::seconds(10));
  pilot.on_sigterm();
  pilot.on_sigterm();
  EXPECT_EQ(pilot.phase(), PilotJob::Phase::kExited);
}

}  // namespace
}  // namespace hpcwhisk::core
