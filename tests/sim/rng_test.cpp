#include "hpcwhisk/sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace hpcwhisk::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng parent{7};
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2{7};
  (void)parent2.fork();
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(parent.next_u64(), parent2.next_u64());
  (void)child;
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{4};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{5};
  std::array<int, 6> counts{};
  for (int i = 0; i < 60000; ++i) counts[rng.uniform_int(0, 5)]++;
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{6};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntInvalidRangeThrows) {
  Rng rng{6};
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{8};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng{8};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng{9};
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng{10};
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(std::log(12.0), 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 12.0, 0.5);
}

TEST(Rng, BernoulliProbability) {
  Rng rng{11};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng{12};
  const std::array<double, 3> w{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng{13};
  const std::array<double, 2> neg{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(neg), std::invalid_argument);
  const std::array<double, 2> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
}

}  // namespace
}  // namespace hpcwhisk::sim
