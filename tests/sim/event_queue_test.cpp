#include "hpcwhisk/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hpcwhisk::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::seconds(3), [&] { fired.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { fired.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifoOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.pop().cb();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(SimTime::minutes(7), [] {});
  EXPECT_EQ(q.pop().when, SimTime::minutes(7));
}

TEST(EventQueue, DefaultEventIdInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  EventQueue q;
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(SimTime::micros(i), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace hpcwhisk::sim
