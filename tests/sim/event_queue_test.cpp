#include "hpcwhisk/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace hpcwhisk::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::seconds(3), [&] { fired.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { fired.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifoOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.pop().cb();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(SimTime::minutes(7), [] {});
  EXPECT_EQ(q.pop().when, SimTime::minutes(7));
}

TEST(EventQueue, DefaultEventIdInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  EventQueue q;
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelReclaimsCallbackEagerly) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  const EventId id = q.schedule(SimTime::seconds(1), [token] {});
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  // The capture must die at cancel() time, not when the tombstone is
  // eventually popped — cancellation-heavy runs must not hoard memory.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, CompactionBoundsTombstones) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(10000);
  for (int i = 0; i < 10000; ++i)
    ids.push_back(q.schedule(SimTime::micros(i), [] {}));
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  // All 10k entries are dead; compaction must have swept nearly all of
  // them without a pop ever happening.
  EXPECT_LE(q.heap_entries(), 128u);
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, SlotReuseKeepsIdsDistinct) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::seconds(1), [] {});
  ASSERT_TRUE(q.cancel(a));
  // The freed slot is recycled; the stale id must not cancel the new one.
  const EventId b = q.schedule(SimTime::seconds(2), [] {});
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(SimTime::micros(i), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace hpcwhisk::sim
