#include "hpcwhisk/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace hpcwhisk::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::seconds(3), [&] { fired.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { fired.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifoOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.pop().cb();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(SimTime::minutes(7), [] {});
  EXPECT_EQ(q.pop().when, SimTime::minutes(7));
}

TEST(EventQueue, DefaultEventIdInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  EventQueue q;
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelReclaimsCallbackEagerly) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  const EventId id = q.schedule(SimTime::seconds(1), [token] {});
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  // The capture must die at cancel() time, not when the tombstone is
  // eventually popped — cancellation-heavy runs must not hoard memory.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, CompactionBoundsTombstones) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(10000);
  for (int i = 0; i < 10000; ++i)
    ids.push_back(q.schedule(SimTime::micros(i), [] {}));
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  // All 10k entries are dead; compaction must have swept nearly all of
  // them without a pop ever happening.
  EXPECT_LE(q.heap_entries(), 128u);
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, SlotReuseKeepsIdsDistinct) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::seconds(1), [] {});
  ASSERT_TRUE(q.cancel(a));
  // The freed slot is recycled; the stale id must not cancel the new one.
  const EventId b = q.schedule(SimTime::seconds(2), [] {});
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAllThenScheduleReusesFreeList) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 512; ++i)
    ids.push_back(q.schedule(SimTime::micros(i), [] {}));
  for (const EventId id : ids) ASSERT_TRUE(q.cancel(id));
  ASSERT_TRUE(q.empty());
  // Refilling after a full cancel must recycle the freed slab slots: the
  // queue behaves exactly like a fresh one, stale ids stay dead, and the
  // tombstone sweep left no residue that a new population could trip on.
  std::vector<int> fired;
  for (int i = 0; i < 512; ++i)
    q.schedule(SimTime::micros(i), [&fired, i] { fired.push_back(i); });
  EXPECT_EQ(q.size(), 512u);
  for (const EventId stale : ids) EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 512u);
  while (!q.empty()) q.pop().cb();
  ASSERT_EQ(fired.size(), 512u);
  for (int i = 0; i < 512; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, TombstoneBoundHoldsUnderAdversarialCancels) {
  // Worst-case cancellation pressure: keep a rolling window of pending
  // events and always cancel the oldest half, so tombstones are minted
  // as fast as possible. After every operation the documented bound must
  // hold: heap entries (incl. tombstones) <= max(live + 64, 2 * live),
  // +1 slack for the entry being sifted during the triggering insert.
  EventQueue q;
  const auto check_bound = [&q] {
    const std::size_t live = q.size();
    const std::size_t bound = std::max(live + 64, 2 * live) + 1;
    EXPECT_LE(q.heap_entries(), bound) << "live=" << live;
  };
  std::vector<EventId> window;
  std::int64_t t = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      window.push_back(q.schedule(SimTime::micros(t++), [] {}));
      check_bound();
    }
    const std::size_t half = window.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(q.cancel(window[i]));
      check_bound();
    }
    window.erase(window.begin(),
                 window.begin() + static_cast<std::ptrdiff_t>(half));
  }
  // Drain what's left; the live events must all still fire.
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop().cb();
    ++fired;
    check_bound();
  }
  EXPECT_EQ(fired, window.size());
}

TEST(EventQueue, PopBatchKeepsFifoAcrossCompaction) {
  EventQueue q;
  // A same-deadline run of 100, plus enough cancellable filler to force
  // a tombstone compaction while the run is still pending.
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i)
    q.schedule(SimTime::seconds(1), [&fired, i] { fired.push_back(i); });
  std::vector<EventId> filler;
  for (int i = 0; i < 400; ++i)
    filler.push_back(q.schedule(SimTime::seconds(2), [] {}));
  for (const EventId id : filler) ASSERT_TRUE(q.cancel(id));
  // 400 tombstones against 100 live guarantees a compaction happened.
  ASSERT_LE(q.heap_entries(), 2 * q.size() + 65);

  std::vector<EventQueue::Popped> out;
  std::size_t claimed = q.pop_batch(64, out);
  EXPECT_EQ(claimed, 64u);

  // Force a second compaction between the two batch claims, with the
  // tail of the run still in the heap.
  filler.clear();
  for (int i = 0; i < 400; ++i)
    filler.push_back(q.schedule(SimTime::seconds(3), [] {}));
  for (const EventId id : filler) ASSERT_TRUE(q.cancel(id));

  claimed += q.pop_batch(64, out);
  EXPECT_EQ(claimed, 100u);
  for (auto& p : out) {
    EXPECT_EQ(p.when, SimTime::seconds(1));
    p.cb();
  }
  ASSERT_EQ(fired.size(), 100u);
  // FIFO must survive both compactions: schedule order, exactly.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, PopBatchStopsAtDeadlineBoundary) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  std::vector<EventQueue::Popped> out;
  // max_n exceeds the run length: only the same-deadline run is claimed.
  EXPECT_EQ(q.pop_batch(100, out), 5u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(SimTime::micros(i), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace hpcwhisk::sim
