#include "hpcwhisk/sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hpcwhisk::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::seconds(1).ticks(), 1'000'000);
  EXPECT_EQ(SimTime::minutes(2).ticks(), 120'000'000);
  EXPECT_EQ(SimTime::hours(1), SimTime::minutes(60));
  EXPECT_EQ(SimTime::days(1), SimTime::hours(24));
  EXPECT_DOUBLE_EQ(SimTime::minutes(90).to_hours(), 1.5);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::seconds(90);
  const SimTime b = SimTime::minutes(1);
  EXPECT_EQ(a - b, SimTime::seconds(30));
  EXPECT_EQ(a + b, SimTime::seconds(150));
  EXPECT_EQ(b * 3, SimTime::minutes(3));
  EXPECT_EQ(a / b, 1);
  EXPECT_EQ(a % b, SimTime::seconds(30));
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::seconds(1.5).to_string(), "1.500s");
  EXPECT_EQ(SimTime::minutes(2).to_string(), "2m00.0s");
  EXPECT_EQ(SimTime::hours(1.5).to_string(), "1h30m00.0s");
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  SimTime seen;
  sim.at(SimTime::seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::seconds(5));
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(Simulation, AfterIsRelative) {
  Simulation sim;
  std::vector<double> times;
  sim.at(SimTime::seconds(10), [&] {
    sim.after(SimTime::seconds(5), [&] { times.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.at(SimTime::seconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(SimTime::seconds(5), [] {}), std::invalid_argument);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.at(SimTime::seconds(1), [&] { ++fired; });
  sim.at(SimTime::seconds(2), [&] { ++fired; });
  sim.at(SimTime::seconds(3), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, RunUntilAdvancesClockWhenQueueDrains) {
  Simulation sim;
  sim.run_until(SimTime::minutes(5));
  EXPECT_EQ(sim.now(), SimTime::minutes(5));
}

TEST(Simulation, CancelledEventDoesNotFire) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.at(SimTime::seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, PeriodicFiresAtInterval) {
  Simulation sim;
  std::vector<double> at;
  auto handle = sim.every(SimTime::seconds(10), [&] { at.push_back(sim.now().to_seconds()); });
  sim.run_until(SimTime::seconds(35));
  handle.stop();
  EXPECT_EQ(at, (std::vector<double>{10, 20, 30}));
}

TEST(Simulation, PeriodicStopsWhenHandleStopped) {
  Simulation sim;
  int count = 0;
  auto handle = sim.every(SimTime::seconds(1), [&] { ++count; });
  sim.run_until(SimTime::seconds(3));
  handle.stop();
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(handle.active());
}

TEST(Simulation, PeriodicCanStopItself) {
  Simulation sim;
  int count = 0;
  PeriodicHandle handle;
  handle = sim.every(SimTime::seconds(1), [&] {
    if (++count == 5) handle.stop();
  });
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(count, 5);
}

TEST(Simulation, ZeroIntervalPeriodicThrows) {
  Simulation sim;
  EXPECT_THROW(sim.every(SimTime::zero(), [] {}), std::invalid_argument);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.at(SimTime::seconds(1), [&] { ++fired; });
  sim.at(SimTime::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventsScheduledDuringRunAreExecuted) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(SimTime::micros(1), recurse);
  };
  sim.after(SimTime::micros(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
}

TEST(Simulation, SettleToRejectsPendingEarlierEvents) {
  Simulation sim;
  sim.at(SimTime::seconds(1), [] {});
  EXPECT_THROW(sim.settle_to(SimTime::seconds(2)), std::logic_error);
}

}  // namespace
}  // namespace hpcwhisk::sim
