#include "hpcwhisk/sim/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hpcwhisk::sim {
namespace {

std::vector<double> draw(const auto& dist, Rng& rng, int n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(dist.sample(rng));
  std::sort(xs.begin(), xs.end());
  return xs;
}

TEST(LognormalFromQuantiles, MatchesMedianAndP95) {
  // The paper's warm-up model: median 12.48 s, P95 26.5 s (Sec. IV-B).
  const LognormalFromQuantiles d{12.48, 26.5, 0.95};
  Rng rng{1};
  const auto xs = draw(d, rng, 100001);
  EXPECT_NEAR(xs[50000], 12.48, 0.4);
  EXPECT_NEAR(xs[95000], 26.5, 1.2);
}

TEST(LognormalFromQuantiles, RejectsBadParameters) {
  EXPECT_THROW((LognormalFromQuantiles{0.0, 1.0, 0.95}), std::invalid_argument);
  EXPECT_THROW((LognormalFromQuantiles{2.0, 1.0, 0.95}), std::invalid_argument);
  EXPECT_THROW((LognormalFromQuantiles{1.0, 2.0, 0.4}), std::invalid_argument);
  EXPECT_THROW((LognormalFromQuantiles{1.0, 2.0, 1.0}), std::invalid_argument);
}

TEST(BoundedPareto, StaysWithinBounds) {
  const BoundedPareto d{1.1, 2.0, 100.0};
  Rng rng{2};
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, HeavyTail) {
  const BoundedPareto d{1.0, 1.0, 1000.0};
  Rng rng{3};
  const auto xs = draw(d, rng, 100001);
  // Median of bounded Pareto(alpha=1, 1, 1000) is ~2.
  EXPECT_NEAR(xs[50000], 2.0, 0.2);
  EXPECT_GT(xs[99000], 50.0);  // long tail present
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW((BoundedPareto{0.0, 1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((BoundedPareto{1.0, 0.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((BoundedPareto{1.0, 3.0, 2.0}), std::invalid_argument);
}

TEST(EmpiricalCdf, CdfInterpolatesLinearly) {
  const EmpiricalCdf cdf{{{0.0, 0.1}, {10.0, 0.5}, {20.0, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(0.0), 0.1);
  EXPECT_DOUBLE_EQ(cdf.cdf(5.0), 0.3);
  EXPECT_DOUBLE_EQ(cdf.cdf(15.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.cdf(20.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(25.0), 1.0);
}

TEST(EmpiricalCdf, QuantileIsInverse) {
  const EmpiricalCdf cdf{{{0.0, 0.1}, {10.0, 0.5}, {20.0, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.05), 0.0);  // below first knot
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 20.0);
}

TEST(EmpiricalCdf, SampleMatchesDistribution) {
  const EmpiricalCdf cdf{{{0.0, 0.001}, {10.0, 0.5}, {20.0, 1.0}}};
  Rng rng{4};
  int below10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (cdf.sample(rng) <= 10.0) ++below10;
  EXPECT_NEAR(below10 / static_cast<double>(n), 0.5, 0.01);
}

TEST(EmpiricalCdf, RejectsNonMonotonicKnots) {
  EXPECT_THROW((EmpiricalCdf{{{0.0, 0.5}, {1.0, 0.4}}}), std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{{{2.0, 0.5}, {1.0, 1.0}}}), std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{{{0.0, 0.5}, {1.0, 0.9}}}), std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{{{0.0, 1.0}}}), std::invalid_argument);
}

TEST(EmpiricalCdf, FitFromSamplesRoundTrips) {
  std::vector<double> samples;
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.uniform(0.0, 100.0));
  const EmpiricalCdf cdf = fit_empirical_cdf(samples);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(cdf.cdf(25.0), 0.25, 0.02);
}

}  // namespace
}  // namespace hpcwhisk::sim
