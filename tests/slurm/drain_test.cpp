// Operator maintenance: drain_node stops scheduling onto a node and
// hands it to maintenance once its current job ends.

#include <gtest/gtest.h>

#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

std::vector<Partition> partitions() {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  return {hpc};
}

Slurmctld::Config config(std::uint32_t nodes) {
  Slurmctld::Config cfg;
  cfg.node_count = nodes;
  cfg.launch_latency = SimTime::zero();
  cfg.min_pass_gap = SimTime::zero();
  return cfg;
}

JobSpec job(std::uint32_t nodes, double minutes) {
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = nodes;
  spec.time_limit = SimTime::minutes(minutes);
  spec.actual_runtime = SimTime::minutes(minutes);
  return spec;
}

TEST(Drain, IdleNodeGoesDownImmediately) {
  Simulation sim;
  Slurmctld ctld{sim, config(2), partitions()};
  ctld.drain_node(0);
  EXPECT_EQ(ctld.observed_state(0), ObservedNodeState::kDown);
  EXPECT_TRUE(ctld.is_draining(0));
  // Jobs land on the remaining node only.
  const JobId id = ctld.submit(job(1, 5));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(id).nodes.front(), 1u);
}

TEST(Drain, BusyNodeFinishesJobThenLeavesService) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  const JobId id = ctld.submit(job(1, 10));
  sim.run_until(SimTime::minutes(1));
  ctld.drain_node(0);
  // The running job is untouched.
  EXPECT_EQ(ctld.job(id).state, JobState::kRunning);
  sim.run_until(SimTime::minutes(11));
  EXPECT_EQ(ctld.job(id).state, JobState::kCompleted);
  EXPECT_EQ(ctld.observed_state(0), ObservedNodeState::kDown);
}

TEST(Drain, SetNodeUpCancelsDrain) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  ctld.drain_node(0);
  EXPECT_EQ(ctld.observed_state(0), ObservedNodeState::kDown);
  ctld.set_node_up(0);
  EXPECT_FALSE(ctld.is_draining(0));
  const JobId id = ctld.submit(job(1, 5));
  sim.run_until(SimTime::minutes(6));
  EXPECT_EQ(ctld.job(id).state, JobState::kCompleted);
}

TEST(Drain, RollingMaintenanceAcrossCluster) {
  Simulation sim;
  Slurmctld ctld{sim, config(4), partitions()};
  // Steady stream of jobs while nodes are drained one by one.
  for (int i = 0; i < 12; ++i) ctld.submit(job(1, 4));
  sim.run_until(SimTime::minutes(1));
  for (NodeId n = 0; n < 2; ++n) ctld.drain_node(n);
  sim.run_until(SimTime::hours(1));
  EXPECT_EQ(ctld.observed_state(0), ObservedNodeState::kDown);
  EXPECT_EQ(ctld.observed_state(1), ObservedNodeState::kDown);
  // All jobs still completed (on the remaining nodes).
  EXPECT_EQ(ctld.counters().completed, 12u);
}

}  // namespace
}  // namespace hpcwhisk::slurm
