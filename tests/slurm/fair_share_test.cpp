// Fair-share priority decay and QOS preemption tiers (fidelity layer).
// Property tests for the ordering contracts:
//  * usage decays exponentially, so an account's debit is monotonically
//    non-increasing while it stays idle, halving every half-life;
//  * heavier recent usage => lower effective priority => later start;
//  * within a node, the lowest QOS tier is evicted first, and a job is
//    never preempted by an equal-or-lower tier;
//  * EASY backfill stays legal under partial-node (TRES) availability:
//    a backfill candidate that fits the free TRES but overlaps the head
//    job's shadow time must wait.

#include <gtest/gtest.h>

#include <cmath>

#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

std::vector<Partition> partitions() {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = SimTime::minutes(3);
  return {hpc, pilot};
}

Slurmctld::Config base_config(std::uint32_t nodes) {
  Slurmctld::Config cfg;
  cfg.node_count = nodes;
  cfg.launch_latency = SimTime::zero();
  cfg.min_pass_gap = SimTime::zero();
  return cfg;
}

JobSpec hpc_job(std::uint32_t nodes, SimTime limit, SimTime runtime,
                std::string account = {}) {
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = nodes;
  spec.time_limit = limit;
  spec.actual_runtime = runtime;
  spec.account = std::move(account);
  return spec;
}

TEST(FairShare, UsageDecaysMonotonicallyAndHalvesPerHalfLife) {
  Simulation sim;
  auto cfg = base_config(1);
  cfg.fidelity.fair_share.enabled = true;
  cfg.fidelity.fair_share.half_life = SimTime::hours(1);
  Slurmctld ctld{sim, cfg, partitions()};

  // 30 minutes of one node charged to "heavy" when the job ends at
  // minute 30; read a minute later, so one minute of decay has already
  // shaved the balance: 1800 * 2^(-1/60).
  ctld.submit(hpc_job(1, SimTime::minutes(30), SimTime::minutes(30), "heavy"));
  sim.run_until(SimTime::minutes(31));
  const double charged = ctld.account_usage("heavy");
  EXPECT_NEAR(charged, 30.0 * 60.0 * std::exp2(-1.0 / 60.0), 1.0);

  double prev_usage = charged;
  std::int64_t prev_debit = ctld.fair_share_debit("heavy");
  EXPECT_GT(prev_debit, 0);
  for (int step = 1; step <= 6; ++step) {
    sim.run_until(SimTime::minutes(31) + SimTime::minutes(30) * step);
    const double usage = ctld.account_usage("heavy");
    const std::int64_t debit = ctld.fair_share_debit("heavy");
    EXPECT_LT(usage, prev_usage);
    EXPECT_LE(debit, prev_debit);
    prev_usage = usage;
    prev_debit = debit;
  }
  // After exactly one half-life of idleness the usage has halved.
  sim.run_until(SimTime::minutes(31) + SimTime::hours(10));
  const double after_10h = ctld.account_usage("heavy");
  EXPECT_NEAR(after_10h, charged / 1024.0, charged * 0.001);
}

TEST(FairShare, HeavierAccountGetsLowerEffectivePriority) {
  Simulation sim;
  auto cfg = base_config(2);
  cfg.fidelity.fair_share.enabled = true;
  Slurmctld ctld{sim, cfg, partitions()};

  // "heavy" burns both nodes for 40 minutes; "light" stays idle.
  ctld.submit(hpc_job(2, SimTime::minutes(40), SimTime::minutes(40), "heavy"));
  sim.run_until(SimTime::minutes(41));
  ASSERT_GT(ctld.account_usage("heavy"), 0.0);
  EXPECT_EQ(ctld.account_usage("light"), 0.0);

  const JobId h =
      ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(5), "heavy"));
  const JobId l =
      ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(5), "light"));
  EXPECT_LT(ctld.job(h).effective_priority, ctld.job(l).effective_priority);
}

TEST(FairShare, LighterAccountStartsFirstUnderContention) {
  Simulation sim;
  auto cfg = base_config(1);
  cfg.fidelity.fair_share.enabled = true;
  Slurmctld ctld{sim, cfg, partitions()};

  // Usage is charged when a job ENDS, so the heavy job must finish
  // before the probes are submitted for its account to carry a debit.
  ctld.submit(hpc_job(1, SimTime::minutes(30), SimTime::minutes(30), "heavy"));
  sim.run_until(SimTime::minutes(30) + SimTime::seconds(10));
  ASSERT_GT(ctld.account_usage("heavy"), 0.0);

  // A filler job pins the node so both probes queue behind it. Same
  // spec.priority, "heavy" submitted first — FIFO would start it first;
  // the fair-share debit must invert that.
  ctld.submit(hpc_job(1, SimTime::minutes(10), SimTime::minutes(10), "filler"));
  sim.run_until(SimTime::minutes(31));
  const JobId h =
      ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(5), "heavy"));
  const JobId l =
      ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(5), "light"));
  sim.run_until(SimTime::minutes(60));
  ASSERT_EQ(ctld.job(l).state, JobState::kCompleted);
  ASSERT_EQ(ctld.job(h).state, JobState::kCompleted);
  EXPECT_LT(ctld.job(l).start_time, ctld.job(h).start_time);
}

Slurmctld::Config qos_config(std::uint32_t nodes) {
  auto cfg = base_config(nodes);
  cfg.fidelity.tres_mode = true;
  cfg.fidelity.node_capacity = {8, 32000, 0};
  cfg.fidelity.qos.push_back({"pilot-low", -1, 0, 1.0});
  cfg.fidelity.qos.push_back({"pilot-high", 0, 0, 1.0});
  return cfg;
}

JobSpec pilot_job(TresVector tres, const std::string& qos) {
  JobSpec spec;
  spec.partition = "pilot";
  spec.num_nodes = 1;
  spec.time_limit = SimTime::minutes(90);
  spec.actual_runtime = SimTime::max();
  spec.tres_per_node = tres;
  spec.qos = qos;
  return spec;
}

TEST(QosPreemption, LowestTierDiesFirstWithinANode) {
  Simulation sim;
  Slurmctld ctld{sim, qos_config(1), partitions()};
  const JobId low = ctld.submit(pilot_job({3, 12000, 0}, "pilot-low"));
  const JobId high = ctld.submit(pilot_job({3, 12000, 0}, "pilot-high"));
  sim.run_until(SimTime::minutes(2));
  ASSERT_EQ(ctld.job(low).state, JobState::kRunning);
  ASSERT_EQ(ctld.job(high).state, JobState::kRunning);

  // HPC job needs 5 cpus: evicting the low pilot alone frees enough
  // (2 free + 3), so the high pilot must survive.
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = 1;
  spec.time_limit = SimTime::minutes(10);
  spec.actual_runtime = SimTime::minutes(10);
  spec.tres_per_node = {5, 20000, 0};
  const JobId h = ctld.submit(spec);
  sim.run_until(SimTime::minutes(7));
  EXPECT_EQ(ctld.job(low).state, JobState::kPreempted);
  EXPECT_EQ(ctld.job(high).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
}

TEST(QosPreemption, HigherTierNeverPreemptedByLower) {
  Simulation sim;
  Slurmctld ctld{sim, qos_config(1), partitions()};
  // The high pilot fills the node; a low pilot then queues. Equal-or-
  // lower tiers never preempt, so the low pilot waits forever.
  const JobId high = ctld.submit(pilot_job({8, 32000, 0}, "pilot-high"));
  sim.run_until(SimTime::minutes(1));
  ASSERT_EQ(ctld.job(high).state, JobState::kRunning);
  const JobId low = ctld.submit(pilot_job({2, 8000, 0}, "pilot-low"));
  sim.run_until(SimTime::minutes(30));
  EXPECT_EQ(ctld.job(high).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(low).state, JobState::kPending);
  EXPECT_EQ(ctld.counters().preempted, 0u);
}

TEST(QosPreemption, UnknownQosIsRejected) {
  Simulation sim;
  Slurmctld ctld{sim, qos_config(1), partitions()};
  EXPECT_THROW(ctld.submit(pilot_job({2, 8000, 0}, "no-such-qos")),
               std::invalid_argument);
}

TEST(EasyBackfill, PartialNodeBackfillRespectsShadowTime) {
  Simulation sim;
  auto cfg = base_config(1);
  cfg.fidelity.tres_mode = true;
  cfg.fidelity.node_capacity = {8, 32000, 0};
  Slurmctld ctld{sim, cfg, partitions()};

  // A takes 6/8 cpus for exactly 10 minutes.
  JobSpec a;
  a.partition = "hpc";
  a.num_nodes = 1;
  a.time_limit = SimTime::minutes(10);
  a.actual_runtime = SimTime::minutes(10);
  a.tres_per_node = {6, 24000, 0};
  const JobId ja = ctld.submit(a);
  sim.run_until(SimTime::seconds(30));
  ASSERT_EQ(ctld.job(ja).state, JobState::kRunning);

  // Head job B wants the whole node: blocked until A ends (the shadow).
  JobSpec b = a;
  b.tres_per_node = {8, 32000, 0};
  b.priority = 10;
  const JobId jb = ctld.submit(b);

  // C fits the free 2 cpus *now* but its 20-minute limit overlaps the
  // shadow: EASY legality says it must NOT start. D (5 min) fits before
  // the shadow and backfills immediately.
  JobSpec c = a;
  c.tres_per_node = {2, 8000, 0};
  c.time_limit = SimTime::minutes(20);
  c.actual_runtime = SimTime::minutes(4);
  const JobId jc = ctld.submit(c);
  JobSpec d = a;
  d.tres_per_node = {2, 8000, 0};
  d.time_limit = SimTime::minutes(5);
  d.actual_runtime = SimTime::minutes(4);
  const JobId jd = ctld.submit(d);

  sim.run_until(SimTime::minutes(9));
  EXPECT_EQ(ctld.job(jd).state, JobState::kCompleted)
      << "D should have backfilled and completed";
  EXPECT_LT(ctld.job(jd).start_time, SimTime::minutes(10));
  EXPECT_EQ(ctld.job(jb).state, JobState::kPending);
  EXPECT_EQ(ctld.job(jc).state, JobState::kPending)
      << "C overlaps the shadow and must not backfill ahead of B";

  // A ends at 10: B (the shadow holder) starts; C only after B.
  sim.run_until(SimTime::minutes(25));
  ASSERT_EQ(ctld.job(jb).state, JobState::kCompleted);
  ASSERT_EQ(ctld.job(jc).state, JobState::kCompleted);
  EXPECT_GE(ctld.job(jb).start_time, SimTime::minutes(10));
  EXPECT_GT(ctld.job(jc).start_time, ctld.job(jb).start_time);
}

}  // namespace
}  // namespace hpcwhisk::slurm
