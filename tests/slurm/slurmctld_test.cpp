#include "hpcwhisk/slurm/slurmctld.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

std::vector<Partition> default_partitions() {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  hpc.preempt_mode = PreemptMode::kOff;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = SimTime::minutes(3);
  pilot.max_time = SimTime::hours(2);
  return {hpc, pilot};
}

Slurmctld::Config small_config(std::uint32_t nodes = 4) {
  Slurmctld::Config cfg;
  cfg.node_count = nodes;
  cfg.sched_interval = SimTime::seconds(30);
  cfg.launch_latency = SimTime::zero();
  cfg.min_pass_gap = SimTime::zero();  // tests exercise instant reaction
  return cfg;
}

JobSpec hpc_job(std::uint32_t nodes, SimTime limit, SimTime runtime) {
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = nodes;
  spec.time_limit = limit;
  spec.actual_runtime = runtime;
  return spec;
}

TEST(Slurmctld, RejectsInvalidSubmissions) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(), default_partitions()};
  EXPECT_THROW(ctld.submit(hpc_job(0, SimTime::minutes(10), SimTime::minutes(5))),
               std::invalid_argument);
  EXPECT_THROW(ctld.submit(hpc_job(99, SimTime::minutes(10), SimTime::minutes(5))),
               std::invalid_argument);
  EXPECT_THROW(ctld.submit(hpc_job(1, SimTime::zero(), SimTime::zero())),
               std::invalid_argument);
  JobSpec bad_partition = hpc_job(1, SimTime::minutes(10), SimTime::minutes(5));
  bad_partition.partition = "nope";
  EXPECT_THROW(ctld.submit(bad_partition), std::invalid_argument);
  JobSpec bad_min = hpc_job(1, SimTime::minutes(10), SimTime::minutes(5));
  bad_min.time_min = SimTime::minutes(20);
  EXPECT_THROW(ctld.submit(bad_min), std::invalid_argument);
}

TEST(Slurmctld, PartitionMaxTimeEnforced) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(), default_partitions()};
  JobSpec pilot;
  pilot.partition = "pilot";
  pilot.num_nodes = 1;
  pilot.time_limit = SimTime::hours(3);  // > pilot partition max of 2h
  EXPECT_THROW(ctld.submit(pilot), std::invalid_argument);
}

TEST(Slurmctld, SingleJobRunsToCompletion) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(), default_partitions()};
  bool started = false;
  EndReason reason{};
  auto spec = hpc_job(2, SimTime::minutes(30), SimTime::minutes(10));
  spec.on_start = [&](const JobRecord&) { started = true; };
  spec.on_end = [&](const JobRecord&, EndReason r) { reason = r; };
  const JobId id = ctld.submit(spec);
  sim.run_until(SimTime::hours(1));
  EXPECT_TRUE(started);
  EXPECT_EQ(reason, EndReason::kCompleted);
  EXPECT_EQ(ctld.job(id).state, JobState::kCompleted);
  EXPECT_EQ(ctld.job(id).end_time, SimTime::minutes(10));
  EXPECT_EQ(ctld.idle_node_count(), 4u);
}

TEST(Slurmctld, JobUsesRequestedNodeCount) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(4), default_partitions()};
  const JobId id =
      ctld.submit(hpc_job(3, SimTime::minutes(30), SimTime::minutes(30)));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(id).nodes.size(), 3u);
  EXPECT_EQ(ctld.idle_node_count(), 1u);
}

TEST(Slurmctld, JobsQueueWhenClusterFull) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(2), default_partitions()};
  ctld.submit(hpc_job(2, SimTime::minutes(20), SimTime::minutes(20)));
  const JobId second =
      ctld.submit(hpc_job(2, SimTime::minutes(20), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(5));
  EXPECT_EQ(ctld.job(second).state, JobState::kPending);
  sim.run_until(SimTime::minutes(25));
  EXPECT_EQ(ctld.job(second).state, JobState::kRunning);
  sim.run_until(SimTime::minutes(40));
  EXPECT_EQ(ctld.job(second).state, JobState::kCompleted);
}

TEST(Slurmctld, TimeoutGetsSigtermThenGraceThenKill) {
  Simulation sim;
  auto parts = default_partitions();
  parts[0].grace_time = SimTime::minutes(3);
  Slurmctld ctld{sim, small_config(), parts};
  bool sigterm = false;
  SimTime sigterm_at;
  // Runs "forever": must be killed at its limit + grace.
  auto spec = hpc_job(1, SimTime::minutes(10), SimTime::max());
  spec.on_sigterm = [&](const JobRecord&) {
    sigterm = true;
    sigterm_at = sim.now();
  };
  const JobId id = ctld.submit(spec);
  sim.run_until(SimTime::hours(1));
  EXPECT_TRUE(sigterm);
  EXPECT_EQ(sigterm_at, SimTime::minutes(10));
  EXPECT_EQ(ctld.job(id).state, JobState::kTimedOut);
  EXPECT_EQ(ctld.job(id).end_time, SimTime::minutes(13));
}

TEST(Slurmctld, JobExitedDuringGraceFreesNodesEarly) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(1), default_partitions()};
  auto spec = hpc_job(1, SimTime::minutes(10), SimTime::max());
  JobId id = 0;
  spec.on_sigterm = [&](const JobRecord& rec) {
    id = rec.id;
    // Exit 5 seconds into the grace period.
    sim.after(SimTime::seconds(5), [&ctld, &rec] { ctld.job_exited(rec.id); });
  };
  ctld.submit(spec);
  sim.run_until(SimTime::hours(1));
  const auto& rec = ctld.job(id);
  EXPECT_EQ(rec.end_time, SimTime::minutes(10) + SimTime::seconds(5));
  // Exited during a time-limit grace: attributed to the time limit.
  EXPECT_EQ(rec.state, JobState::kTimedOut);
}

TEST(Slurmctld, CancelPendingJob) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(1), default_partitions()};
  ctld.submit(hpc_job(1, SimTime::minutes(60), SimTime::minutes(60)));
  const JobId queued =
      ctld.submit(hpc_job(1, SimTime::minutes(60), SimTime::minutes(60)));
  sim.run_until(SimTime::minutes(1));
  EXPECT_TRUE(ctld.cancel(queued));
  EXPECT_EQ(ctld.job(queued).state, JobState::kCancelled);
  EXPECT_FALSE(ctld.cancel(queued));  // already finished
}

TEST(Slurmctld, CancelRunningJobGoesThroughGrace) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(1), default_partitions()};
  const JobId id =
      ctld.submit(hpc_job(1, SimTime::minutes(60), SimTime::max()));
  sim.run_until(SimTime::minutes(1));
  EXPECT_TRUE(ctld.cancel(id));
  EXPECT_EQ(ctld.job(id).state, JobState::kCompleting);
  sim.run_until(SimTime::minutes(10));
  EXPECT_NE(ctld.job(id).state, JobState::kRunning);
  EXPECT_EQ(ctld.idle_node_count(), 1u);
}

TEST(Slurmctld, NodeDownKillsJobAndNodeUpRestores) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(1), default_partitions()};
  const JobId id =
      ctld.submit(hpc_job(1, SimTime::minutes(60), SimTime::minutes(60)));
  sim.run_until(SimTime::minutes(5));
  const NodeId node = ctld.job(id).nodes.front();
  ctld.set_node_down(node);
  EXPECT_EQ(ctld.job(id).state, JobState::kNodeFailed);
  EXPECT_EQ(ctld.observed_state(node), ObservedNodeState::kDown);
  EXPECT_EQ(ctld.idle_node_count(), 0u);
  ctld.set_node_up(node);
  EXPECT_EQ(ctld.idle_node_count(), 1u);
}

TEST(Slurmctld, NodeObserverSeesTransitions) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(1), default_partitions()};
  std::vector<NodeTransition> transitions;
  ctld.set_node_observer(
      [&](const NodeTransition& t) { transitions.push_back(t); });
  ctld.submit(hpc_job(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(30));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].state, ObservedNodeState::kHpc);
  EXPECT_EQ(transitions[1].state, ObservedNodeState::kIdle);
  EXPECT_EQ(transitions[1].when, SimTime::minutes(10));
}

TEST(Slurmctld, CountersAreConsistent) {
  Simulation sim;
  Slurmctld ctld{sim, small_config(2), default_partitions()};
  for (int i = 0; i < 5; ++i)
    ctld.submit(hpc_job(1, SimTime::minutes(10), SimTime::minutes(5)));
  sim.run_until(SimTime::hours(1));
  EXPECT_EQ(ctld.counters().submitted, 5u);
  EXPECT_EQ(ctld.counters().started, 5u);
  EXPECT_EQ(ctld.counters().completed, 5u);
}

TEST(Slurmctld, MinPassGapDefersEventScheduling) {
  Simulation sim;
  auto cfg = small_config(1);
  cfg.min_pass_gap = SimTime::seconds(20);
  cfg.sched_interval = SimTime::hours(10);  // keep periodic passes away
  Slurmctld ctld{sim, cfg, default_partitions()};
  // First job triggers a pass immediately (no previous pass).
  ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(5)));
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(ctld.idle_node_count(), 0u);
  // The node frees at t=5min; the end-of-job pass request is deferred to
  // 20s after the *previous* pass... which was long ago, so it runs
  // immediately. Submit a successor right before the free to check the
  // deferral window after that pass.
  const JobId next =
      ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(5)));
  sim.run_until(SimTime::minutes(5) + SimTime::seconds(1));
  // The free-triggered pass at t=5min started the successor (gap elapsed
  // since the submission pass).
  EXPECT_EQ(ctld.job(next).state, JobState::kRunning);
}

}  // namespace
}  // namespace hpcwhisk::slurm
