// Per-TRES scheduling (fidelity.tres_mode): nodes carry a {cpus, mem}
// capacity vector, jobs request fractions of it, and the scheduler packs
// jobs onto partial nodes — so one node can host prime HPC work AND a
// pilot simultaneously (fractional-node harvesting), the generalization
// the fidelity bench measures. Also covers advance reservations, which
// exist only in TRES mode.

#include <gtest/gtest.h>

#include "hpcwhisk/slurm/slurmctld.hpp"
#include "hpcwhisk/slurm/tres.hpp"

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

std::vector<Partition> partitions(SimTime grace = SimTime::minutes(3)) {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = grace;
  return {hpc, pilot};
}

Slurmctld::Config tres_config(std::uint32_t nodes,
                              TresVector capacity = {8, 32000, 0}) {
  Slurmctld::Config cfg;
  cfg.node_count = nodes;
  cfg.launch_latency = SimTime::zero();
  cfg.min_pass_gap = SimTime::zero();
  cfg.fidelity.tres_mode = true;
  cfg.fidelity.node_capacity = capacity;
  return cfg;
}

JobSpec hpc_job(std::uint32_t nodes, SimTime limit, SimTime runtime,
                TresVector tres = {}) {
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = nodes;
  spec.time_limit = limit;
  spec.actual_runtime = runtime;
  spec.tres_per_node = tres;
  return spec;
}

JobSpec pilot_job(SimTime limit, TresVector tres = {}) {
  JobSpec spec;
  spec.partition = "pilot";
  spec.num_nodes = 1;
  spec.time_limit = limit;
  spec.actual_runtime = SimTime::max();
  spec.tres_per_node = tres;
  return spec;
}

TEST(TresVectorOps, ComponentwiseArithmeticAndFit) {
  TresVector a{4, 16000, 0};
  const TresVector b{2, 8000, 0};
  EXPECT_TRUE(b.fits_within(a));
  EXPECT_FALSE(a.fits_within(b));
  EXPECT_EQ(a + b, (TresVector{6, 24000, 0}));
  EXPECT_EQ(a - b, (TresVector{2, 8000, 0}));
  a -= b;
  EXPECT_EQ(a, (TresVector{2, 8000, 0}));
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(TresVector{}.is_zero());
  // One axis over is enough to not fit.
  EXPECT_FALSE((TresVector{1, 99999, 0}).fits_within(a));
  EXPECT_NE(a.to_string().find("cpu=2"), std::string::npos);
}

TEST(TresVectorOps, SubtractionSaturatesInsteadOfWrapping) {
  TresVector a{1, 1000, 0};
  a -= TresVector{3, 4000, 2};
  EXPECT_TRUE(a.is_zero());
}

TEST(Tres, WholeNodeRequestSubstitutesCapacity) {
  Simulation sim;
  Slurmctld ctld{sim, tres_config(1), partitions()};
  const JobId id =
      ctld.submit(hpc_job(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(id).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(id).spec.tres_per_node, (TresVector{8, 32000, 0}));
  EXPECT_TRUE(ctld.node_free(0).is_zero());
}

TEST(Tres, OversizedRequestIsRejected) {
  Simulation sim;
  Slurmctld ctld{sim, tres_config(1), partitions()};
  EXPECT_THROW(ctld.submit(hpc_job(1, SimTime::minutes(10),
                                   SimTime::minutes(10), {9, 1000, 0})),
               std::invalid_argument);
}

TEST(Tres, HpcJobAndPilotCoResideOnOneNode) {
  // The tentpole behavior: a half-node HPC job leaves TRES room and the
  // scheduler places a pilot on the *same* node instead of leaving the
  // remainder idle.
  Simulation sim;
  Slurmctld ctld{sim, tres_config(1), partitions()};
  const JobId h = ctld.submit(
      hpc_job(1, SimTime::minutes(30), SimTime::minutes(30), {4, 16000, 0}));
  const JobId p = ctld.submit(pilot_job(SimTime::minutes(20), {2, 8000, 0}));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(p).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(h).nodes, ctld.job(p).nodes);
  EXPECT_EQ(ctld.node_free(0), (TresVector{2, 8000, 0}));
  // Prime HPC work dominates the observed role of a shared node.
  EXPECT_EQ(ctld.observed_state(0), ObservedNodeState::kHpc);
}

TEST(Tres, MultiNodeJobAllocatesTresOnEveryNode) {
  Simulation sim;
  Slurmctld ctld{sim, tres_config(3), partitions()};
  const JobId id = ctld.submit(
      hpc_job(3, SimTime::minutes(20), SimTime::minutes(20), {6, 24000, 0}));
  sim.run_until(SimTime::minutes(1));
  ASSERT_EQ(ctld.job(id).state, JobState::kRunning);
  ASSERT_EQ(ctld.job(id).nodes.size(), 3u);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(ctld.node_free(n), (TresVector{2, 8000, 0}));
  }
  const auto totals = ctld.tres_totals();
  EXPECT_EQ(totals.capacity, (TresVector{24, 96000, 0}));
  EXPECT_EQ(totals.hpc, (TresVector{18, 72000, 0}));
  EXPECT_TRUE(totals.pilot.is_zero());
}

TEST(Tres, PreemptionFreesTresForHigherTier) {
  // Pilot holds 6 of 8 cpus; a whole-node HPC job preempts it (tier 1 >
  // tier 0) and takes over after the grace window.
  Simulation sim;
  Slurmctld ctld{sim, tres_config(1), partitions()};
  const JobId p = ctld.submit(pilot_job(SimTime::minutes(90), {6, 24000, 0}));
  sim.run_until(SimTime::minutes(2));
  ASSERT_EQ(ctld.job(p).state, JobState::kRunning);

  const JobId h =
      ctld.submit(hpc_job(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(2) + SimTime::seconds(1));
  EXPECT_EQ(ctld.job(p).state, JobState::kCompleting);  // SIGTERM'd
  sim.run_until(SimTime::minutes(6));
  EXPECT_EQ(ctld.job(p).state, JobState::kPreempted);
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  EXPECT_TRUE(ctld.node_free(0).is_zero());
}

TEST(Tres, NoPreemptionWhenRequestsFitSideBySide) {
  // A small HPC job must NOT evict the pilot if both fit: co-residency
  // beats preemption.
  Simulation sim;
  Slurmctld ctld{sim, tres_config(1), partitions()};
  const JobId p = ctld.submit(pilot_job(SimTime::minutes(90), {2, 8000, 0}));
  sim.run_until(SimTime::minutes(2));
  ASSERT_EQ(ctld.job(p).state, JobState::kRunning);
  const JobId h = ctld.submit(
      hpc_job(1, SimTime::minutes(10), SimTime::minutes(10), {4, 16000, 0}));
  sim.run_until(SimTime::minutes(3));
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(p).state, JobState::kRunning);
  EXPECT_EQ(ctld.counters().preempted, 0u);
}

TEST(Reservation, WindowBlocksLaunchesThatWouldOverlap) {
  Simulation sim;
  auto cfg = tres_config(1);
  Reservation r;
  r.name = "maint";
  r.start = SimTime::minutes(10);
  r.end = SimTime::minutes(20);
  r.nodes = {0};
  cfg.fidelity.reservations.push_back(r);
  Slurmctld ctld{sim, cfg, partitions()};
  // limit (8) + hpc grace (3) reaches past the window start: no launch
  // before the window, so the job waits until the window closes.
  const JobId id =
      ctld.submit(hpc_job(1, SimTime::minutes(8), SimTime::minutes(5)));
  sim.run_until(SimTime::minutes(9));
  EXPECT_EQ(ctld.job(id).state, JobState::kPending);
  sim.run_until(SimTime::minutes(21));
  EXPECT_EQ(ctld.job(id).state, JobState::kRunning);
  EXPECT_GE(ctld.job(id).start_time, r.end);
}

TEST(Reservation, ShortJobSlipsInAheadOfWindow) {
  Simulation sim;
  auto cfg = tres_config(1);
  Reservation r;
  r.name = "maint";
  r.start = SimTime::minutes(10);
  r.end = SimTime::minutes(20);
  r.nodes = {0};
  cfg.fidelity.reservations.push_back(r);
  Slurmctld ctld{sim, cfg, partitions()};
  // 5 min limit + 3 min grace = 8 min < 10: fits before the window.
  const JobId id =
      ctld.submit(hpc_job(1, SimTime::minutes(5), SimTime::minutes(4)));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(id).state, JobState::kRunning);
}

TEST(Reservation, OpeningWindowPreemptsRunningWorkAndParksNode) {
  Simulation sim;
  Slurmctld ctld{sim, tres_config(2), partitions()};
  // Two pilots fill both nodes; the reservation is registered only after
  // they launched (a config-time window would have fenced the reserved
  // node off and the pilot would never have started there).
  const JobId p0 = ctld.submit(pilot_job(SimTime::minutes(90)));
  const JobId p1 = ctld.submit(pilot_job(SimTime::minutes(90)));
  sim.run_until(SimTime::minutes(1));
  ASSERT_EQ(ctld.job(p0).state, JobState::kRunning);
  ASSERT_EQ(ctld.job(p1).state, JobState::kRunning);

  Reservation r;
  r.name = "maint";
  r.start = SimTime::minutes(5);
  r.end = SimTime::minutes(15);
  r.nodes = {0};
  ctld.add_reservation(r);

  // Window opens: the reserved node's pilot is SIGTERM'd and gone within
  // the 3-minute grace; the node leaves both supplies.
  sim.run_until(SimTime::minutes(9));
  const NodeId reserved = 0;
  const JobId on_reserved =
      ctld.job(p0).nodes.front() == reserved ? p0 : p1;
  const JobId elsewhere = on_reserved == p0 ? p1 : p0;
  EXPECT_EQ(ctld.job(on_reserved).state, JobState::kPreempted);
  EXPECT_EQ(ctld.job(elsewhere).state, JobState::kRunning);
  EXPECT_EQ(ctld.observed_state(reserved), ObservedNodeState::kDown);

  // Window closes: the node returns to service and a queued pilot can
  // use it again.
  const JobId p2 = ctld.submit(pilot_job(SimTime::minutes(30)));
  sim.run_until(SimTime::minutes(16));
  EXPECT_EQ(ctld.job(p2).state, JobState::kRunning);
  EXPECT_NE(ctld.observed_state(reserved), ObservedNodeState::kDown);
}

TEST(Reservation, RequiresTresMode) {
  Simulation sim;
  Slurmctld::Config cfg;
  cfg.node_count = 1;
  Slurmctld ctld{sim, cfg, partitions()};
  Reservation r;
  r.name = "maint";
  r.start = SimTime::minutes(5);
  r.end = SimTime::minutes(10);
  r.nodes = {0};
  EXPECT_THROW(ctld.add_reservation(r), std::invalid_argument);
}

}  // namespace
}  // namespace hpcwhisk::slurm
