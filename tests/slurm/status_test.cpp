#include "hpcwhisk/slurm/status.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(Status, CompactNodeList) {
  EXPECT_EQ(compact_node_list({}), "");
  EXPECT_EQ(compact_node_list({5}), "5");
  EXPECT_EQ(compact_node_list({0, 1, 2, 3}), "0-3");
  EXPECT_EQ(compact_node_list({0, 1, 3, 5, 6, 7}), "0,1,3,5-7");
  EXPECT_EQ(compact_node_list({2, 4, 6}), "2,4,6");
}

TEST(Status, SinfoShowsStates) {
  Simulation sim;
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Slurmctld ctld{sim, {.node_count = 4, .min_pass_gap = SimTime::zero()},
                 {hpc}};
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = 2;
  spec.time_limit = SimTime::minutes(30);
  spec.actual_runtime = SimTime::minutes(30);
  ctld.submit(spec);
  sim.run_until(SimTime::minutes(1));
  ctld.set_node_down(3);
  const std::string sinfo = format_sinfo(ctld);
  EXPECT_NE(sinfo.find("NODES 4"), std::string::npos);
  EXPECT_NE(sinfo.find("hpc"), std::string::npos);
  EXPECT_NE(sinfo.find("idle"), std::string::npos);
  EXPECT_NE(sinfo.find("down"), std::string::npos);
}

TEST(Status, SqueueListsActiveAndPending) {
  Simulation sim;
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Slurmctld ctld{sim, {.node_count = 1, .min_pass_gap = SimTime::zero()},
                 {hpc}};
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = 1;
  spec.time_limit = SimTime::minutes(30);
  spec.actual_runtime = SimTime::minutes(30);
  ctld.submit(spec);
  ctld.submit(spec);  // queued behind the first
  sim.run_until(SimTime::minutes(1));
  const std::string squeue = format_squeue(ctld);
  EXPECT_NE(squeue.find("RUNNING"), std::string::npos);
  EXPECT_NE(squeue.find("PENDING"), std::string::npos);
  EXPECT_NE(squeue.find("JOBID"), std::string::npos);
}

TEST(Status, SqueueBoundsRows) {
  Simulation sim;
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Slurmctld ctld{sim, {.node_count = 1, .min_pass_gap = SimTime::zero()},
                 {hpc}};
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = 1;
  spec.time_limit = SimTime::minutes(30);
  spec.actual_runtime = SimTime::minutes(30);
  for (int i = 0; i < 30; ++i) ctld.submit(spec);
  sim.run_until(SimTime::minutes(1));
  const std::string squeue = format_squeue(ctld, 10);
  EXPECT_NE(squeue.find("... and 20 more"), std::string::npos);
}

TEST(Status, CompletedJobsExcluded) {
  Simulation sim;
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Slurmctld ctld{sim, {.node_count = 1, .min_pass_gap = SimTime::zero()},
                 {hpc}};
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = 1;
  spec.time_limit = SimTime::minutes(5);
  spec.actual_runtime = SimTime::minutes(5);
  ctld.submit(spec);
  sim.run_until(SimTime::minutes(10));
  const std::string squeue = format_squeue(ctld);
  EXPECT_EQ(squeue.find("COMPLETED"), std::string::npos);
}

}  // namespace
}  // namespace hpcwhisk::slurm
