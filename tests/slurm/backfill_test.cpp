// EASY-backfill behaviour: reservations for the head blocked job, safe
// backfilling of short jobs, variable-length sizing, and the invariant
// the paper relies on — tier-0 pilots never delay HPC work.

#include <gtest/gtest.h>

#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

std::vector<Partition> partitions() {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = SimTime::minutes(3);
  return {hpc, pilot};
}

Slurmctld::Config config(std::uint32_t nodes) {
  Slurmctld::Config cfg;
  cfg.node_count = nodes;
  cfg.launch_latency = SimTime::zero();
  cfg.min_pass_gap = SimTime::zero();  // tests exercise instant reaction
  return cfg;
}

JobSpec job(std::uint32_t nodes, SimTime limit, SimTime runtime) {
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = nodes;
  spec.time_limit = limit;
  spec.actual_runtime = runtime;
  return spec;
}

TEST(Backfill, ShortJobBackfillsAroundBlockedHead) {
  Simulation sim;
  Slurmctld ctld{sim, config(2), partitions()};
  // Job A occupies both nodes for 60 min.
  ctld.submit(job(2, SimTime::minutes(60), SimTime::minutes(60)));
  sim.run_until(SimTime::minutes(1));
  // Job B (head, blocked): needs 2 nodes -> reserved at A's limit.
  const JobId blocked =
      ctld.submit(job(2, SimTime::minutes(30), SimTime::minutes(30)));
  // Job C: 1 node, 20 min — would fit *before* the reservation only if a
  // node were free; both are busy, so C cannot backfill here.
  const JobId c =
      ctld.submit(job(1, SimTime::minutes(20), SimTime::minutes(20)));
  sim.run_until(SimTime::minutes(5));
  EXPECT_EQ(ctld.job(blocked).state, JobState::kPending);
  EXPECT_EQ(ctld.job(c).state, JobState::kPending);
}

TEST(Backfill, BackfillDoesNotDelayReservation) {
  Simulation sim;
  Slurmctld ctld{sim, config(2), partitions()};
  // A: node-hogging job on 1 node for 60 min.
  ctld.submit(job(1, SimTime::minutes(60), SimTime::minutes(60)));
  sim.run_until(SimTime::minutes(1));
  // B (head, blocked): needs both nodes; reservation at t=60min.
  const JobId b = ctld.submit(job(2, SimTime::minutes(30), SimTime::minutes(30)));
  // C: 1 node, limit 30 min — fits on the idle node before t=60. Backfills.
  const JobId c = ctld.submit(job(1, SimTime::minutes(30), SimTime::minutes(10)));
  // D: 1 node, limit 90 min — would overlap the reservation. Must wait.
  const JobId d = ctld.submit(job(1, SimTime::minutes(90), SimTime::minutes(90)));
  sim.run_until(SimTime::minutes(2));
  EXPECT_EQ(ctld.job(c).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(d).state, JobState::kPending);
  EXPECT_EQ(ctld.job(b).state, JobState::kPending);
  // B starts once A (and C) end: at t=60 both nodes are free.
  sim.run_until(SimTime::minutes(61));
  EXPECT_EQ(ctld.job(b).state, JobState::kRunning);
  // B must not have been delayed past the reservation time.
  EXPECT_LE(ctld.job(b).start_time, SimTime::minutes(61));
}

TEST(Backfill, ReservationUsesDeclaredLimitNotRuntime) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  // A declares 60 min but really runs 10 — the scheduler cannot know.
  ctld.submit(job(1, SimTime::minutes(60), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(1));
  const JobId b = ctld.submit(job(1, SimTime::minutes(30), SimTime::minutes(5)));
  sim.run_until(SimTime::minutes(5));
  EXPECT_EQ(ctld.job(b).state, JobState::kPending);
  // When A ends early, the event-driven pass starts B immediately.
  sim.run_until(SimTime::minutes(11));
  EXPECT_EQ(ctld.job(b).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(b).start_time, SimTime::minutes(10));
}

TEST(Backfill, VariableLengthHpcJobSizedToReservation) {
  Simulation sim;
  auto cfg = config(2);
  cfg.var_jobs_periodic_only = false;
  Slurmctld ctld{sim, cfg, partitions()};
  ctld.submit(job(1, SimTime::minutes(60), SimTime::minutes(60)));
  sim.run_until(SimTime::minutes(2));
  // Head blocked job -> reservation on both nodes at t=60.
  ctld.submit(job(2, SimTime::minutes(30), SimTime::minutes(30)));
  // Variable job: accepts 10..120 min. Should be granted ~58 min
  // (reservation at 60 minus now=2, floored to 2-min slots).
  JobSpec var = job(1, SimTime::minutes(120), SimTime::max());
  var.time_min = SimTime::minutes(10);
  const JobId v = ctld.submit(var);
  sim.run_until(SimTime::minutes(3));
  ASSERT_EQ(ctld.job(v).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(v).granted_limit, SimTime::minutes(58));
}

TEST(Backfill, JobBeyondWindowGetsNoReservationButEventuallyRuns) {
  Simulation sim;
  auto cfg = config(1);
  cfg.backfill_window = SimTime::minutes(120);
  Slurmctld ctld{sim, cfg, partitions()};
  // A runs (declares) 3 hours: beyond the backfill window.
  ctld.submit(job(1, SimTime::hours(3), SimTime::hours(3)));
  sim.run_until(SimTime::minutes(1));
  const JobId b = ctld.submit(job(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::hours(2));
  EXPECT_EQ(ctld.job(b).state, JobState::kPending);
  sim.run_until(SimTime::hours(3) + SimTime::minutes(15));
  EXPECT_EQ(ctld.job(b).state, JobState::kCompleted);
}

TEST(Backfill, HigherPriorityWithinTierGoesFirst) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  ctld.submit(job(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(1));
  JobSpec low = job(1, SimTime::minutes(10), SimTime::minutes(10));
  low.priority = 1;
  JobSpec high = job(1, SimTime::minutes(10), SimTime::minutes(10));
  high.priority = 5;
  const JobId l = ctld.submit(low);
  const JobId h = ctld.submit(high);
  sim.run_until(SimTime::hours(1));
  EXPECT_LT(ctld.job(h).start_time, ctld.job(l).start_time);
}

TEST(Backfill, BackfillDepthLimitsExamination) {
  Simulation sim;
  auto cfg = config(1);
  cfg.backfill_depth = 2;
  Slurmctld ctld{sim, cfg, partitions()};
  ctld.submit(job(1, SimTime::minutes(30), SimTime::minutes(30)));
  sim.run_until(SimTime::minutes(1));
  // Three queued jobs; with depth 2 the third is not examined this pass,
  // but later passes (after completions) still pick it up.
  std::vector<JobId> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(job({}, {}, {}).num_nodes ? 0 : 0);  // placeholder
  ids.clear();
  for (int i = 0; i < 3; ++i)
    ids.push_back(ctld.submit(job(1, SimTime::minutes(10), SimTime::minutes(10))));
  sim.run_until(SimTime::hours(2));
  for (const JobId id : ids)
    EXPECT_EQ(ctld.job(id).state, JobState::kCompleted);
}

}  // namespace
}  // namespace hpcwhisk::slurm
