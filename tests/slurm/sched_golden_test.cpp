// Golden decision-log pin for the scheduler hot path: the shared seeded
// trace (slurm/testing/golden_trace.hpp) drives Slurmctld and every
// launch decision (time, job, granted limit, exact node set) plus every
// end reason is folded into an FNV-1a hash. The hash is captured once
// and must survive any performance refactor of run_sched_pass /
// build_availability byte-for-byte: an optimization that changes any
// decision — order, sizing, placement or reservation effect — fails here.
//
// It must equally survive the Slurm-fidelity generalization (per-TRES
// packing, fair-share, QOS tiers, reservations): the LegacyKnobsOff leg
// spells the fidelity defaults out explicitly and demands the same hash,
// pinning the contract that all new semantics are opt-in.

#include <gtest/gtest.h>

#include "hpcwhisk/slurm/testing/golden_trace.hpp"

namespace hpcwhisk::slurm {
namespace {

using testing::GoldenOutcome;
using testing::kGoldenHash;
using testing::kGoldenLogBytes;
using testing::run_golden_trace;

TEST(SchedGolden, DecisionLogMatchesBaseline) {
  const GoldenOutcome out = run_golden_trace(42);
  EXPECT_EQ(out.hash, kGoldenHash)
      << "decision log diverged (" << out.log_bytes << " bytes, expected "
      << kGoldenLogBytes << ").\nactual hash: 0x" << std::hex << out.hash
      << std::dec << "\nlog head:\n"
      << out.head;
  EXPECT_EQ(out.log_bytes, kGoldenLogBytes);
  // The trace must exercise the paths the optimization touches.
  EXPECT_GT(out.counters.started, 100u);
  EXPECT_GT(out.counters.preempted, 0u);
  EXPECT_GT(out.counters.sched_passes, 200u);
}

TEST(SchedGolden, LegacyKnobsOffKeepsBaseline) {
  // Every fidelity knob at its documented "off" value, written out long
  // hand (not just defaulted) so this leg fails loudly if any knob's
  // neutral value ever stops being neutral.
  const GoldenOutcome out = run_golden_trace(42, [](Slurmctld::Config& cfg) {
    cfg.fidelity.tres_mode = false;
    cfg.fidelity.node_capacity = TresVector{};
    cfg.fidelity.fair_share.enabled = false;
    cfg.fidelity.qos.clear();
    cfg.fidelity.reservations.clear();
  });
  EXPECT_EQ(out.hash, kGoldenHash)
      << "fidelity knobs at their off values changed legacy decisions;"
         " hash 0x"
      << std::hex << out.hash << std::dec << "\nlog head:\n"
      << out.head;
  EXPECT_EQ(out.log_bytes, kGoldenLogBytes);
}

TEST(SchedGolden, SameSeedTwiceIsIdentical) {
  const GoldenOutcome a = run_golden_trace(7);
  const GoldenOutcome b = run_golden_trace(7);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.log_bytes, b.log_bytes);
}

TEST(SchedGolden, DifferentSeedsDiverge) {
  const GoldenOutcome a = run_golden_trace(7);
  const GoldenOutcome c = run_golden_trace(8);
  EXPECT_NE(a.hash, c.hash);
}

}  // namespace
}  // namespace hpcwhisk::slurm
