// Golden decision-log pin for the scheduler hot path: a seeded 2-hour
// mixed trace (fixed + variable HPC jobs, a replenished tier-0 pilot
// pool) drives Slurmctld with production-default pass cadence, and every
// launch decision (time, job, granted limit, exact node set) plus every
// end reason is folded into an FNV-1a hash. The hash is captured once
// and must survive any performance refactor of run_sched_pass /
// build_availability byte-for-byte: an optimization that changes any
// decision — order, sizing, placement or reservation effect — fails here.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <string_view>

#include "hpcwhisk/obs/trace.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

// The repo's canonical decision-log digest; bench/obs_report folds its
// traced-vs-untraced determinism log through the same function.
using obs::fnv1a;

std::vector<Partition> partitions() {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = SimTime::minutes(3);
  return {hpc, pilot};
}

struct TraceOutcome {
  std::uint64_t hash{0};
  std::size_t log_bytes{0};
  std::string head;  // first log lines, for mismatch triage
  Slurmctld::Counters counters;
};

/// Runs the seeded trace and returns the decision-log digest. All
/// randomness flows through one Rng in a fixed draw order, so the log is
/// a pure function of (seed, scheduler behavior).
TraceOutcome run_trace(std::uint64_t seed) {
  Simulation sim;
  Slurmctld::Config cfg;  // production defaults: 30 s passes, 20 s gap
  cfg.node_count = 48;
  Slurmctld ctld{sim, cfg, partitions()};
  Rng rng{seed};
  std::string log;
  const SimTime end = SimTime::hours(2);

  const auto record = [&log](const char tag, const JobRecord& rec,
                             SimTime at, EndReason reason) {
    log += tag;
    log += ' ';
    log += std::to_string(rec.id);
    log += ' ';
    log += std::to_string(at.ticks());
    if (tag == 'S') {
      log += ' ';
      log += std::to_string(rec.granted_limit.ticks());
      for (const NodeId n : rec.nodes) {
        log += ' ';
        log += std::to_string(n);
      }
    } else {
      log += ' ';
      log += to_string(reason);
    }
    log += '\n';
  };

  const auto instrument = [&](JobSpec spec) {
    spec.on_start = [&, record](const JobRecord& rec) {
      record('S', rec, rec.start_time, EndReason::kCompleted);
    };
    spec.on_end = [&, record](const JobRecord& rec, EndReason reason) {
      record('E', rec, rec.end_time, reason);
    };
    return spec;
  };

  // Tier-0 pilot pool: 12 variable-length pilots up front, each replaced
  // 10 s after it leaves (mirrors the job manager's replenishment).
  std::function<void()> submit_pilot = [&] {
    JobSpec spec;
    spec.partition = "pilot";
    spec.num_nodes = 1;
    spec.time_limit = SimTime::minutes(120);
    spec.time_min = SimTime::minutes(4);
    spec = instrument(std::move(spec));
    auto on_end = std::move(spec.on_end);
    spec.on_end = [&, on_end](const JobRecord& rec, EndReason reason) {
      on_end(rec, reason);
      if (sim.now() < end) {
        sim.after(SimTime::seconds(10), [&] { submit_pilot(); });
      }
    };
    ctld.submit(std::move(spec));
  };
  for (int i = 0; i < 12; ++i) submit_pilot();

  // HPC arrivals: Poisson (mean 40 s) mix of fixed and variable jobs
  // whose declared limits overshoot their true runtimes (the slack that
  // drives backfill and reservations).
  std::function<void()> arrive = [&] {
    if (sim.now() >= end) return;
    JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    const double limit_min = static_cast<double>(rng.uniform_int(6, 60));
    spec.time_limit = SimTime::minutes(limit_min);
    spec.actual_runtime =
        SimTime::minutes(limit_min * rng.uniform(0.3, 1.0));
    spec.priority = rng.uniform_int(0, 3);
    if (rng.bernoulli(0.2)) {
      spec.time_min = SimTime::minutes(4);
      spec.actual_runtime = SimTime::max();  // var jobs run to their grant
    }
    ctld.submit(instrument(std::move(spec)));
    sim.after(SimTime::seconds(rng.exponential(40.0)), arrive);
  };
  sim.after(SimTime::seconds(rng.exponential(40.0)), arrive);

  sim.run_until(end);

  TraceOutcome out;
  out.hash = fnv1a(log);
  out.log_bytes = log.size();
  out.head = log.substr(0, 400);
  out.counters = ctld.counters();
  return out;
}

// Captured from the pre-optimization scheduler (PR 2 baseline). If this
// test fails after a perf change, the change altered scheduling
// *decisions*, not just their cost.
constexpr std::uint64_t kGoldenHash = 0xd9c33b629e8bafacULL;
constexpr std::size_t kGoldenLogBytes = 7045;

TEST(SchedGolden, DecisionLogMatchesBaseline) {
  const TraceOutcome out = run_trace(42);
  EXPECT_EQ(out.hash, kGoldenHash)
      << "decision log diverged (" << out.log_bytes << " bytes, expected "
      << kGoldenLogBytes << ").\nactual hash: 0x" << std::hex << out.hash
      << std::dec << "\nlog head:\n"
      << out.head;
  EXPECT_EQ(out.log_bytes, kGoldenLogBytes);
  // The trace must exercise the paths the optimization touches.
  EXPECT_GT(out.counters.started, 100u);
  EXPECT_GT(out.counters.preempted, 0u);
  EXPECT_GT(out.counters.sched_passes, 200u);
}

TEST(SchedGolden, SameSeedTwiceIsIdentical) {
  const TraceOutcome a = run_trace(7);
  const TraceOutcome b = run_trace(7);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.log_bytes, b.log_bytes);
}

TEST(SchedGolden, DifferentSeedsDiverge) {
  const TraceOutcome a = run_trace(7);
  const TraceOutcome c = run_trace(8);
  EXPECT_NE(a.hash, c.hash);
}

}  // namespace
}  // namespace hpcwhisk::slurm
