// Preemption (PreemptMode=CANCEL) behaviour: tier-0 pilots yield to HPC
// jobs with SIGTERM + grace, the paper's central non-invasiveness
// mechanism ("HPC-Whisk jobs never significantly dislodge HPC jobs").

#include <gtest/gtest.h>

#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm {
namespace {

using sim::SimTime;
using sim::Simulation;

std::vector<Partition> partitions(SimTime grace = SimTime::minutes(3)) {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = grace;
  return {hpc, pilot};
}

Slurmctld::Config config(std::uint32_t nodes) {
  Slurmctld::Config cfg;
  cfg.node_count = nodes;
  cfg.launch_latency = SimTime::zero();
  cfg.min_pass_gap = SimTime::zero();  // tests exercise instant reaction
  return cfg;
}

JobSpec hpc(std::uint32_t nodes, SimTime limit, SimTime runtime) {
  JobSpec spec;
  spec.partition = "hpc";
  spec.num_nodes = nodes;
  spec.time_limit = limit;
  spec.actual_runtime = runtime;
  return spec;
}

JobSpec pilot(SimTime limit) {
  JobSpec spec;
  spec.partition = "pilot";
  spec.num_nodes = 1;
  spec.time_limit = limit;
  spec.actual_runtime = SimTime::max();  // serves until terminated
  return spec;
}

TEST(Preemption, PilotRunsOnIdleNode) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  const JobId p = ctld.submit(pilot(SimTime::minutes(90)));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(p).state, JobState::kRunning);
  EXPECT_EQ(ctld.observed_state(0), ObservedNodeState::kPilot);
}

TEST(Preemption, HpcJobEvictsPilotWithSigterm) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  bool pilot_sigterm = false;
  auto p = pilot(SimTime::minutes(90));
  p.on_sigterm = [&](const JobRecord&) { pilot_sigterm = true; };
  const JobId pid = ctld.submit(p);
  sim.run_until(SimTime::minutes(5));
  ASSERT_EQ(ctld.job(pid).state, JobState::kRunning);

  const JobId h = ctld.submit(hpc(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(5) + SimTime::seconds(1));
  EXPECT_TRUE(pilot_sigterm);
  EXPECT_EQ(ctld.job(pid).state, JobState::kCompleting);
  // HPC job waits for the node; pilot killed at grace end -> HPC starts.
  sim.run_until(SimTime::minutes(9));
  EXPECT_EQ(ctld.job(pid).state, JobState::kPreempted);
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  // Delay bounded by the grace period (3 min).
  EXPECT_LE(ctld.job(h).start_time, SimTime::minutes(8) + SimTime::seconds(1));
}

TEST(Preemption, EarlyPilotExitShortensHpcDelay) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  auto p = pilot(SimTime::minutes(90));
  p.on_sigterm = [&](const JobRecord& rec) {
    // A well-behaved pilot drains in 2 seconds, not 3 minutes.
    const JobId id = rec.id;
    sim.after(SimTime::seconds(2), [&ctld, id] { ctld.job_exited(id); });
  };
  ctld.submit(p);
  sim.run_until(SimTime::minutes(5));
  const JobId h = ctld.submit(hpc(1, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(6));
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  EXPECT_LE(ctld.job(h).start_time - ctld.job(h).submit_time,
            SimTime::seconds(3));
}

TEST(Preemption, PilotNeverDelaysQueuedHpcJob) {
  // The core invariant: with pilots present, HPC start times must be no
  // later than the pilot drain time, and pilots only ever use idle nodes.
  Simulation sim;
  Slurmctld ctld{sim, config(2), partitions()};
  // Fill one node with HPC work, the other gets a pilot.
  ctld.submit(hpc(1, SimTime::minutes(30), SimTime::minutes(30)));
  const JobId p = ctld.submit(pilot(SimTime::minutes(90)));
  sim.run_until(SimTime::minutes(1));
  EXPECT_EQ(ctld.job(p).state, JobState::kRunning);
  // Now a 2-node HPC job arrives: needs the pilot's node AND the busy one.
  const JobId h = ctld.submit(hpc(2, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(40));
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  // Without the pilot, H would start at t=30 (when the HPC job ends).
  // With the pilot, it must start no later than 30 + grace.
  EXPECT_LE(ctld.job(h).start_time, SimTime::minutes(33) + SimTime::seconds(1));
}

TEST(Preemption, PilotTimesOutAtOwnLimitWithGrace) {
  Simulation sim;
  Slurmctld ctld{sim, config(1), partitions()};
  bool sigterm = false;
  auto p = pilot(SimTime::minutes(10));
  p.on_sigterm = [&](const JobRecord& rec) {
    sigterm = true;
    const JobId id = rec.id;
    sim.after(SimTime::seconds(1), [&ctld, id] { ctld.job_exited(id); });
  };
  const JobId pid = ctld.submit(p);
  sim.run_until(SimTime::minutes(30));
  EXPECT_TRUE(sigterm);
  // Exited during a time-limit grace: state is TIMEOUT, at limit+1s.
  EXPECT_EQ(ctld.job(pid).state, JobState::kTimedOut);
  EXPECT_EQ(ctld.job(pid).end_time,
            SimTime::minutes(10) + SimTime::seconds(1));
}

TEST(Preemption, NonPreemptiblePartitionIsNeverEvicted) {
  Simulation sim;
  // Two HPC tiers, neither preemptible.
  Partition t1;
  t1.name = "t1";
  t1.priority_tier = 1;
  Partition t2;
  t2.name = "t2";
  t2.priority_tier = 2;
  Slurmctld ctld{sim, config(1), {t1, t2}};
  JobSpec low;
  low.partition = "t1";
  low.num_nodes = 1;
  low.time_limit = SimTime::minutes(30);
  low.actual_runtime = SimTime::minutes(30);
  const JobId l = ctld.submit(low);
  sim.run_until(SimTime::minutes(1));
  JobSpec high = low;
  high.partition = "t2";
  high.time_limit = SimTime::minutes(5);
  high.actual_runtime = SimTime::minutes(5);
  const JobId h = ctld.submit(high);
  sim.run_until(SimTime::minutes(20));
  // The higher-tier job must WAIT (no preemption without CANCEL mode).
  EXPECT_EQ(ctld.job(l).state, JobState::kRunning);
  EXPECT_EQ(ctld.job(h).state, JobState::kPending);
  sim.run_until(SimTime::minutes(40));
  EXPECT_EQ(ctld.job(h).state, JobState::kCompleted);
}

TEST(Preemption, MultiplePilotsEvictedForMultiNodeJob) {
  Simulation sim;
  Slurmctld ctld{sim, config(3), partitions()};
  std::vector<JobId> pilots;
  int sigterms = 0;
  for (int i = 0; i < 3; ++i) {
    auto p = pilot(SimTime::minutes(90));
    p.on_sigterm = [&sigterms, &ctld, &sim](const JobRecord& rec) {
      ++sigterms;
      const JobId id = rec.id;
      sim.after(SimTime::seconds(2), [&ctld, id] { ctld.job_exited(id); });
    };
    pilots.push_back(ctld.submit(p));
  }
  sim.run_until(SimTime::minutes(2));
  const JobId h = ctld.submit(hpc(3, SimTime::minutes(10), SimTime::minutes(10)));
  sim.run_until(SimTime::minutes(3));
  EXPECT_EQ(sigterms, 3);
  EXPECT_EQ(ctld.job(h).state, JobState::kRunning);
  EXPECT_EQ(ctld.counters().preempted, 3u);
}

TEST(Preemption, HoleFittingPolicyRejectsOversizedPilot) {
  Simulation sim;
  auto cfg = config(2);
  cfg.pilot_placement = PilotPlacement::kHoleFitting;
  Slurmctld ctld{sim, cfg, partitions()};
  // One node busy for 20 min; head blocked 2-node job reserves both at 20.
  ctld.submit(hpc(1, SimTime::minutes(20), SimTime::minutes(20)));
  sim.run_until(SimTime::minutes(1));
  ctld.submit(hpc(2, SimTime::minutes(30), SimTime::minutes(30)));
  sim.run_until(SimTime::minutes(2));
  // 90-min pilot does not fit the <=18-min hole; an 8-min one does.
  const JobId big = ctld.submit(pilot(SimTime::minutes(90)));
  const JobId small = ctld.submit(pilot(SimTime::minutes(8)));
  sim.run_until(SimTime::minutes(4));
  EXPECT_EQ(ctld.job(big).state, JobState::kPending);
  EXPECT_EQ(ctld.job(small).state, JobState::kRunning);
}

TEST(Preemption, PreemptAwarePolicyPlacesOversizedPilot) {
  Simulation sim;
  auto cfg = config(2);
  cfg.pilot_placement = PilotPlacement::kPreemptAware;
  Slurmctld ctld{sim, cfg, partitions()};
  ctld.submit(hpc(1, SimTime::minutes(20), SimTime::minutes(20)));
  sim.run_until(SimTime::minutes(1));
  ctld.submit(hpc(2, SimTime::minutes(30), SimTime::minutes(30)));
  sim.run_until(SimTime::minutes(2));
  const JobId big = ctld.submit(pilot(SimTime::minutes(90)));
  sim.run_until(SimTime::minutes(4));
  // Faithful Slurm-with-CANCEL behaviour: the pilot starts anyway and
  // will simply be preempted when the reservation materializes.
  EXPECT_EQ(ctld.job(big).state, JobState::kRunning);
}

}  // namespace
}  // namespace hpcwhisk::slurm
