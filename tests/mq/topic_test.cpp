#include "hpcwhisk/mq/topic.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::mq {
namespace {

using sim::SimTime;

Message make(std::uint64_t id, const std::string& key = "fn") {
  Message m;
  m.id = id;
  m.key = key;
  return m;
}

TEST(Topic, FifoOrder) {
  Topic t{"t"};
  for (std::uint64_t i = 0; i < 5; ++i) t.publish(make(i), SimTime::zero());
  const auto msgs = t.poll(5);
  ASSERT_EQ(msgs.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(msgs[i].id, i);
}

TEST(Topic, PollRespectsMaxCount) {
  Topic t{"t"};
  for (std::uint64_t i = 0; i < 10; ++i) t.publish(make(i), SimTime::zero());
  EXPECT_EQ(t.poll(3).size(), 3u);
  EXPECT_EQ(t.size(), 7u);
}

TEST(Topic, PollOnEmptyReturnsNothing) {
  Topic t{"t"};
  EXPECT_TRUE(t.poll(4).empty());
  EXPECT_FALSE(t.poll_one().has_value());
}

TEST(Topic, PublishStampsFirstPublishOnce) {
  Topic t{"t"};
  t.publish(make(1), SimTime::seconds(10));
  auto m = t.poll_one();
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first_published, SimTime::seconds(10));
  EXPECT_EQ(m->delivery_count, 1u);

  // Re-publish (fast-lane reroute): first_published preserved, count bumped.
  t.publish(*m, SimTime::seconds(20));
  m = t.poll_one();
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first_published, SimTime::seconds(10));
  EXPECT_EQ(m->delivery_count, 2u);
}

TEST(Topic, DrainRemovesEverythingInOrder) {
  Topic t{"t"};
  for (std::uint64_t i = 0; i < 4; ++i) t.publish(make(i), SimTime::zero());
  const auto drained = t.drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained.front().id, 0u);
  EXPECT_EQ(drained.back().id, 3u);
  EXPECT_TRUE(t.empty());
}

TEST(Topic, CountersTrackTraffic) {
  Topic t{"t"};
  for (std::uint64_t i = 0; i < 6; ++i) t.publish(make(i), SimTime::zero());
  (void)t.poll(2);
  (void)t.poll_one();
  (void)t.drain();
  const auto c = t.counters();
  EXPECT_EQ(c.published, 6u);
  EXPECT_EQ(c.consumed, 3u);
  EXPECT_EQ(c.drained, 3u);
}

TEST(Topic, KeyAndNamePreserved) {
  Topic t{"invoker-3"};
  EXPECT_EQ(t.name(), "invoker-3");
  t.publish(make(9, "pagerank"), SimTime::zero());
  const auto m = t.poll_one();
  ASSERT_TRUE(m);
  EXPECT_EQ(m->key, "pagerank");
}

}  // namespace
}  // namespace hpcwhisk::mq
