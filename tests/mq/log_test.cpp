#include "hpcwhisk/mq/log.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::mq {
namespace {

using sim::SimTime;

Message make(std::uint64_t id) {
  Message m;
  m.id = id;
  return m;
}

TEST(Log, AppendAssignsMonotonicOffsets) {
  Log log{"l"};
  EXPECT_EQ(log.append(make(10), SimTime::zero()), 0u);
  EXPECT_EQ(log.append(make(11), SimTime::zero()), 1u);
  EXPECT_EQ(log.end_offset(), 2u);
  EXPECT_EQ(log.begin_offset(), 0u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(Log, ReadIsNonDestructive) {
  Log log{"l"};
  for (std::uint64_t i = 0; i < 5; ++i) log.append(make(i), SimTime::zero());
  const auto first = log.read(0, 3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].id, 0u);
  EXPECT_EQ(first[2].id, 2u);
  // Reading again returns the same messages.
  EXPECT_EQ(log.read(0, 3).size(), 3u);
  EXPECT_EQ(log.size(), 5u);
}

TEST(Log, GroupStartsAtEndByDefault) {
  Log log{"l"};
  log.append(make(1), SimTime::zero());
  log.create_group("g");
  EXPECT_EQ(log.poll("g", 10).size(), 0u);
  log.append(make(2), SimTime::zero());
  const auto msgs = log.poll("g", 10);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].id, 2u);
}

TEST(Log, GroupFromBeginningReplays) {
  Log log{"l"};
  for (std::uint64_t i = 0; i < 4; ++i) log.append(make(i), SimTime::zero());
  log.create_group("replay", /*from_beginning=*/true);
  EXPECT_EQ(log.poll("replay", 10).size(), 4u);
}

TEST(Log, PollWithoutCommitRedelivers) {
  Log log{"l"};
  log.create_group("g", true);
  log.append(make(1), SimTime::zero());
  EXPECT_EQ(log.poll("g", 10).size(), 1u);
  EXPECT_EQ(log.poll("g", 10).size(), 1u);  // at-least-once
  log.commit("g", 1);
  EXPECT_EQ(log.poll("g", 10).size(), 0u);
}

TEST(Log, IndependentGroups) {
  Log log{"l"};
  log.create_group("a", true);
  for (std::uint64_t i = 0; i < 3; ++i) log.append(make(i), SimTime::zero());
  log.create_group("b", true);
  log.commit("a", 3);
  EXPECT_EQ(log.lag("a"), 0u);
  EXPECT_EQ(log.lag("b"), 3u);
  EXPECT_EQ(log.poll("b", 10).size(), 3u);
}

TEST(Log, CommitValidation) {
  Log log{"l"};
  log.create_group("g", true);
  log.append(make(1), SimTime::zero());
  EXPECT_THROW(log.commit("g", 5), std::invalid_argument);  // beyond end
  log.commit("g", 1);
  EXPECT_THROW(log.commit("g", 0), std::invalid_argument);  // backwards
  log.commit("g", 0, /*allow_rewind=*/true);                // explicit rewind
  EXPECT_EQ(log.committed("g"), 0u);
  EXPECT_THROW(log.commit("nope", 0), std::out_of_range);
  EXPECT_THROW(log.poll("nope", 1), std::out_of_range);
  EXPECT_THROW(log.lag("nope"), std::out_of_range);
}

TEST(Log, TrimDiscardsAndClampsGroups) {
  Log log{"l"};
  log.create_group("g", true);
  for (std::uint64_t i = 0; i < 10; ++i) log.append(make(i), SimTime::zero());
  log.trim(6);
  EXPECT_EQ(log.begin_offset(), 6u);
  EXPECT_EQ(log.size(), 4u);
  // The group's position was below the floor: clamped up.
  EXPECT_EQ(log.committed("g"), 6u);
  const auto msgs = log.poll("g", 10);
  ASSERT_EQ(msgs.size(), 4u);
  EXPECT_EQ(msgs[0].id, 6u);
  // Reads below the floor skip forward.
  EXPECT_EQ(log.read(0, 2).size(), 2u);
  EXPECT_EQ(log.read(0, 2)[0].id, 6u);
}

TEST(Log, TrimBeyondEndEmptiesLog) {
  Log log{"l"};
  for (std::uint64_t i = 0; i < 3; ++i) log.append(make(i), SimTime::zero());
  log.trim(99);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.begin_offset(), 3u);
  EXPECT_EQ(log.end_offset(), 3u);
  // Appending continues from the preserved offset space.
  EXPECT_EQ(log.append(make(9), SimTime::zero()), 3u);
}

TEST(Log, CreateGroupIdempotent) {
  Log log{"l"};
  log.create_group("g", true);
  log.append(make(1), SimTime::zero());
  log.commit("g", 1);
  log.create_group("g", true);  // must not reset the committed offset
  EXPECT_EQ(log.committed("g"), 1u);
}

}  // namespace
}  // namespace hpcwhisk::mq
