#include "hpcwhisk/mq/broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace hpcwhisk::mq {
namespace {

TEST(Broker, FastLaneExistsOnConstruction) {
  Broker b;
  EXPECT_EQ(b.fast_lane().name(), Broker::kFastLane);
  EXPECT_NE(b.find(Broker::kFastLane), nullptr);
}

TEST(Broker, TopicCreatesOnDemand) {
  Broker b;
  EXPECT_EQ(b.find("x"), nullptr);
  Topic& t = b.topic("x");
  EXPECT_EQ(&b.topic("x"), &t);  // same instance on second access
  EXPECT_EQ(b.find("x"), &t);
}

TEST(Broker, TopicPointersStable) {
  Broker b;
  Topic& first = b.topic("a");
  for (int i = 0; i < 100; ++i) b.topic("t" + std::to_string(i));
  EXPECT_EQ(&b.topic("a"), &first);
}

TEST(Broker, TopicNamesListsAll) {
  Broker b;
  b.topic("a");
  b.topic("b");
  const auto names = b.topic_names();
  EXPECT_EQ(names.size(), 3u);  // a, b, fast-lane
  EXPECT_EQ(b.topic_count(), 3u);
}

TEST(Broker, ResolveReturnsStableHandle) {
  Broker b;
  TopicRef ref = b.resolve("queue");
  EXPECT_TRUE(static_cast<bool>(ref));
  EXPECT_TRUE(ref.id().valid());
  // The handle, the string API and find() all reach the same instance,
  // and the pointer survives arbitrary later topic creation.
  EXPECT_EQ(ref.get(), &b.topic("queue"));
  for (int i = 0; i < 100; ++i) b.topic("other" + std::to_string(i));
  EXPECT_EQ(b.resolve("queue").get(), ref.get());
  EXPECT_EQ(b.find("queue"), ref.get());
}

TEST(Broker, ByIdRoundTrips) {
  Broker b;
  const TopicRef a = b.resolve("a");
  const TopicRef c = b.resolve("c");
  EXPECT_EQ(b.by_id(a.id()), a.get());
  EXPECT_EQ(b.by_id(c.id()), c.get());
  EXPECT_EQ(b.by_id(a->id()), a.get());  // topic knows its own id
  EXPECT_EQ(b.by_id(TopicId{}), nullptr);  // invalid id resolves to null
}

TEST(Broker, TopicNamesCacheTracksCreation) {
  Broker b;
  b.topic("b");
  const auto first = b.topic_names();   // builds the sorted cache
  const auto again = b.topic_names();   // served from cache
  EXPECT_EQ(first, again);
  b.topic("a");                         // dirties the cache
  const auto after = b.topic_names();
  EXPECT_EQ(after.size(), first.size() + 1);
  EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  EXPECT_TRUE(std::find(after.begin(), after.end(), "a") != after.end());
}

TEST(Topic, ApproxEmptyTracksQueue) {
  Broker b;
  Topic& t = b.topic("x");
  EXPECT_TRUE(t.approx_empty());
  Message m;
  m.id = 1;
  t.publish(std::move(m), sim::SimTime::zero());
  EXPECT_FALSE(t.approx_empty());  // precise when single-threaded
  (void)t.poll_one();
  EXPECT_TRUE(t.approx_empty());
}

TEST(Topic, PollIntoAppendsWithoutClearing) {
  Broker b;
  Topic& t = b.topic("x");
  for (std::uint64_t i = 0; i < 6; ++i) {
    Message m;
    m.id = i;
    t.publish(std::move(m), sim::SimTime::zero());
  }
  std::vector<Message> scratch;
  EXPECT_EQ(t.poll_into(4, scratch), 4u);
  EXPECT_EQ(t.poll_into(4, scratch), 2u);  // drains the remainder
  EXPECT_EQ(t.poll_into(4, scratch), 0u);  // empty fast path
  ASSERT_EQ(scratch.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(scratch[i].id, i);
}

TEST(Broker, ConcurrentPublishConsumeIsSafe) {
  Broker b;
  Topic& t = b.topic("shared");
  constexpr int kPerThread = 2000;
  constexpr int kThreads = 4;
  std::vector<std::thread> producers;
  for (int w = 0; w < kThreads; ++w) {
    producers.emplace_back([&t, w] {
      for (int i = 0; i < kPerThread; ++i) {
        Message m;
        m.id = static_cast<std::uint64_t>(w) * kPerThread + i;
        t.publish(std::move(m), sim::SimTime::zero());
      }
    });
  }
  std::size_t consumed = 0;
  std::thread consumer{[&] {
    while (consumed < kPerThread * kThreads) {
      consumed += t.poll(64).size();
    }
  }};
  for (auto& p : producers) p.join();
  consumer.join();
  EXPECT_EQ(consumed, static_cast<std::size_t>(kPerThread * kThreads));
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace hpcwhisk::mq
