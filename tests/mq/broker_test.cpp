#include "hpcwhisk/mq/broker.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hpcwhisk::mq {
namespace {

TEST(Broker, FastLaneExistsOnConstruction) {
  Broker b;
  EXPECT_EQ(b.fast_lane().name(), Broker::kFastLane);
  EXPECT_NE(b.find(Broker::kFastLane), nullptr);
}

TEST(Broker, TopicCreatesOnDemand) {
  Broker b;
  EXPECT_EQ(b.find("x"), nullptr);
  Topic& t = b.topic("x");
  EXPECT_EQ(&b.topic("x"), &t);  // same instance on second access
  EXPECT_EQ(b.find("x"), &t);
}

TEST(Broker, TopicPointersStable) {
  Broker b;
  Topic& first = b.topic("a");
  for (int i = 0; i < 100; ++i) b.topic("t" + std::to_string(i));
  EXPECT_EQ(&b.topic("a"), &first);
}

TEST(Broker, TopicNamesListsAll) {
  Broker b;
  b.topic("a");
  b.topic("b");
  const auto names = b.topic_names();
  EXPECT_EQ(names.size(), 3u);  // a, b, fast-lane
  EXPECT_EQ(b.topic_count(), 3u);
}

TEST(Broker, ConcurrentPublishConsumeIsSafe) {
  Broker b;
  Topic& t = b.topic("shared");
  constexpr int kPerThread = 2000;
  constexpr int kThreads = 4;
  std::vector<std::thread> producers;
  for (int w = 0; w < kThreads; ++w) {
    producers.emplace_back([&t, w] {
      for (int i = 0; i < kPerThread; ++i) {
        Message m;
        m.id = static_cast<std::uint64_t>(w) * kPerThread + i;
        t.publish(std::move(m), sim::SimTime::zero());
      }
    });
  }
  std::size_t consumed = 0;
  std::thread consumer{[&] {
    while (consumed < kPerThread * kThreads) {
      consumed += t.poll(64).size();
    }
  }};
  for (auto& p : producers) p.join();
  consumer.join();
  EXPECT_EQ(consumed, static_cast<std::size_t>(kPerThread * kThreads));
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace hpcwhisk::mq
