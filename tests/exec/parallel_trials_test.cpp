// The parallel trial runner's contract: results gathered by input index,
// output flushed to the sink in input order (byte-identical to a serial
// run), exceptions rethrown on the calling thread, pool join on shutdown.

#include "hpcwhisk/exec/parallel_trials.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hpcwhisk/exec/thread_pool.hpp"
#include "hpcwhisk/sim/rng.hpp"

namespace hpcwhisk::exec {
namespace {

/// A deterministic stand-in for a simulation trial: burns the seed's RNG
/// stream and reports a value that depends only on the seed.
std::uint64_t trial_value(std::uint64_t seed) {
  sim::Rng rng{seed};
  std::uint64_t acc = 0;
  for (int i = 0; i < 1000; ++i)
    acc ^= static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  return acc;
}

TEST(ParallelTrials, SerialAndParallelResultsIdentical) {
  std::vector<std::uint64_t> seeds{11, 12, 13, 14, 15, 16, 17, 18};
  const auto fn = [](const std::uint64_t seed, std::ostream& os) {
    const std::uint64_t v = trial_value(seed);
    os << "trial " << seed << " -> " << v << "\n";
    return v;
  };

  std::ostringstream serial_sink, parallel_sink;
  const auto serial = parallel_trials(seeds, fn, 1, serial_sink);
  const auto parallel = parallel_trials(seeds, fn, 4, parallel_sink);

  ASSERT_EQ(serial.size(), seeds.size());
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(serial[i], trial_value(seeds[i])) << "index " << i;
  // The satellite guarantee: stdout of a parallel sweep is byte-identical
  // to the serial sweep, regardless of completion order.
  EXPECT_EQ(serial_sink.str(), parallel_sink.str());
}

TEST(ParallelTrials, OutputStaysInInputOrderWhenLaterTrialsFinishFirst) {
  // Earlier trials sleep longer, so completion order is the reverse of
  // input order — the flusher must still emit input order.
  std::vector<int> delays_ms{40, 20, 5, 0};
  std::ostringstream sink;
  parallel_trials(
      delays_ms,
      [](const int delay, std::ostream& os) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        os << "slept " << delay << "\n";
      },
      4, sink);
  EXPECT_EQ(sink.str(), "slept 40\nslept 20\nslept 5\nslept 0\n");
}

TEST(ParallelTrials, VoidFunctionIsSupported) {
  std::vector<int> configs{1, 2, 3};
  std::ostringstream sink;
  parallel_trials(
      configs, [](const int v, std::ostream& os) { os << v; }, 2, sink);
  EXPECT_EQ(sink.str(), "123");
}

TEST(ParallelTrials, FirstErrorByIndexPropagates) {
  std::vector<int> configs{0, 1, 2, 3};
  const auto fn = [](const int v, std::ostream& os) {
    os << "start " << v << "\n";
    if (v >= 2) throw std::runtime_error("boom " + std::to_string(v));
    return v;
  };
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::ostringstream sink;
    try {
      parallel_trials(configs, fn, jobs, sink);
      FAIL() << "expected exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      // Trials 2 and 3 both throw; the rethrow must pick the first by
      // input index, exactly as a serial run would encounter it.
      EXPECT_STREQ(e.what(), "boom 2") << "jobs=" << jobs;
    }
    // Everything up to and including the failing trial was flushed.
    EXPECT_TRUE(sink.str().starts_with("start 0\nstart 1\nstart 2\n"))
        << "jobs=" << jobs << " got: " << sink.str();
  }
}

TEST(ParallelTrials, EmptyConfigListIsANoOp) {
  std::ostringstream sink;
  const auto results = parallel_trials(
      std::vector<int>{},
      [](const int v, std::ostream&) { return v; }, 4, sink);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(sink.str().empty());
}

TEST(JobCount, EnvOverrideWins) {
  ASSERT_EQ(setenv("HW_BENCH_JOBS", "3", 1), 0);
  EXPECT_EQ(job_count(), 3u);
  ASSERT_EQ(setenv("HW_BENCH_JOBS", "0", 1), 0);  // invalid: fall through
  EXPECT_GE(job_count(), 1u);
  ASSERT_EQ(unsetenv("HW_BENCH_JOBS"), 0);
  EXPECT_GE(job_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.thread_count(), 2u);
  auto a = pool.submit([] { return 7; });
  auto b = pool.submit([] { return std::string{"ok"}; });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool{2};
  auto f = pool.submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
    // Destructor: join-on-destruction must run everything already queued.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

}  // namespace
}  // namespace hpcwhisk::exec
