// Parameterized property tests. The whole-system invariants moved into
// check::InvariantSuite (src/check) so the SimCheck fuzzer, the soak
// sweep, and this test all share one oracle; SystemInvariants is now a
// thin driver that samples a scenario per (seed, model, chaos, clusters)
// and runs the standard suite — including chaos-enabled and 2-cluster
// federated sweeps the old in-line version never covered. The analysis
// accounting identities and raw-Slurm schedule legality checks remain
// local: they exercise layers below what a ScenarioSpec drives.

#include <gtest/gtest.h>

#include "hpcwhisk/analysis/clairvoyant.hpp"
#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/check/simcheck.hpp"
#include "hpcwhisk/core/system.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

// ---------------------------------------------------------------------
// Whole-system invariants, swept over (seed, supply model, chaos,
// federation). Each case expands its seed into a full scenario, runs it
// twice (replay determinism), and judges the run with the standard
// invariant suite: activation conservation, terminal balance, pilot
// accounting, node-timeline tiling, no double allocation, grace
// windows, backfill legality, federation conservation.
// ---------------------------------------------------------------------

struct SystemParam {
  std::uint64_t seed;
  core::SupplyModel model;
  bool chaos{false};
  std::uint32_t clusters{1};
};

class SystemInvariants : public ::testing::TestWithParam<SystemParam> {};

TEST_P(SystemInvariants, HoldOverSampledScenario) {
  const auto param = GetParam();
  check::SampleOptions opts;
  opts.chaos = param.chaos;
  opts.max_clusters = param.clusters;
  opts.fed_probability = 1.0;  // clusters > 1 always federates
  auto spec = check::ScenarioSpec::sample(param.seed, opts);
  spec.supply = param.model;

  const auto result = check::check_scenario(
      spec, check::InvariantSuite::standard(), {.replay_check = true});
  EXPECT_TRUE(result.replayed);
  for (const auto& v : result.violations) {
    ADD_FAILURE() << "[" << v.invariant << "] " << v.message << "\n  spec: "
                  << spec.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModels, SystemInvariants,
    ::testing::Values(
        SystemParam{1, core::SupplyModel::kFib},
        SystemParam{2, core::SupplyModel::kFib},
        SystemParam{3, core::SupplyModel::kFib},
        SystemParam{4, core::SupplyModel::kVar},
        SystemParam{5, core::SupplyModel::kVar},
        SystemParam{6, core::SupplyModel::kVar},
        SystemParam{7, core::SupplyModel::kFib, /*chaos=*/true},
        SystemParam{8, core::SupplyModel::kVar, /*chaos=*/true},
        SystemParam{9, core::SupplyModel::kFib, /*chaos=*/false,
                    /*clusters=*/2},
        SystemParam{10, core::SupplyModel::kVar, /*chaos=*/true,
                    /*clusters=*/2}),
    [](const ::testing::TestParamInfo<SystemParam>& pi) {
      std::string name = std::string(core::to_string(pi.param.model)) +
                         "_seed" + std::to_string(pi.param.seed);
      if (pi.param.chaos) name += "_chaos";
      if (pi.param.clusters > 1)
        name += "_fed" + std::to_string(pi.param.clusters);
      return name;
    });

// ---------------------------------------------------------------------
// Clairvoyant accounting identity over randomized period populations.
// ---------------------------------------------------------------------

class ClairvoyantAccounting : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClairvoyantAccounting, SharesSumToOneAndJobsArePositive) {
  sim::Rng rng{GetParam()};
  std::vector<analysis::NodeInterval> periods;
  double t = 0;
  for (int i = 0; i < 500; ++i) {
    const double len = 0.2 + rng.exponential(6.0);  // minutes
    periods.push_back(analysis::NodeInterval{
        static_cast<std::uint32_t>(i % 16), slurm::ObservedNodeState::kIdle,
        SimTime::minutes(t), SimTime::minutes(t + len)});
    t += rng.uniform(0.0, 2.0);
  }
  for (const bool cut : {false, true}) {
    analysis::ClairvoyantSimulator::Config cfg;
    cfg.job_lengths = core::job_length_set("A1");
    cfg.allow_preemption_cut = cut;
    const auto r = analysis::ClairvoyantSimulator{cfg}.run(
        periods, SimTime::zero(), SimTime::minutes(t + 300));
    EXPECT_NEAR(r.warmup_share + r.ready_share + r.unused_share, 1.0, 1e-9);
    EXPECT_GT(r.jobs, 0u);
    if (cut) {
      EXPECT_DOUBLE_EQ(r.unused_share, 0.0);
    }
    EXPECT_GE(r.ready_workers.max, r.ready_workers.p75);
    EXPECT_LE(r.non_availability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClairvoyantAccounting,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Slurm schedule legality over random job mixes: no node is ever
// double-allocated, and preemptible jobs never block higher tiers past
// the grace period.
// ---------------------------------------------------------------------

class ScheduleLegality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleLegality, NoDoubleAllocationEver) {
  Simulation simulation;
  slurm::Slurmctld::Config cfg;
  cfg.node_count = 16;
  cfg.min_pass_gap = SimTime::zero();
  slurm::Slurmctld ctld{simulation, cfg, core::default_partitions()};

  // Track per-node occupancy via the observer; an allocation transition
  // on an occupied node would manifest as hpc->hpc with no idle between,
  // which record() cannot distinguish — so track via job callbacks.
  std::vector<slurm::JobId> holder(16, 0);
  sim::Rng rng{GetParam()};

  const auto check_alloc = [&holder](const slurm::JobRecord& rec) {
    for (const auto n : rec.nodes) {
      ASSERT_EQ(holder[n], 0u) << "node double-allocated";
      holder[n] = rec.id;
    }
  };
  const auto release = [&holder](const slurm::JobRecord& rec,
                                 slurm::EndReason) {
    for (const auto n : rec.nodes)
      if (holder[n] == rec.id) holder[n] = 0;
  };

  for (int i = 0; i < 120; ++i) {
    slurm::JobSpec spec;
    const bool pilot = rng.bernoulli(0.4);
    spec.partition = pilot ? "pilot" : "hpc";
    spec.num_nodes =
        pilot ? 1 : static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    spec.time_limit = SimTime::minutes(rng.uniform_int(2, 60));
    spec.actual_runtime =
        pilot ? SimTime::max() : SimTime::minutes(rng.uniform_int(1, 50));
    spec.on_start = check_alloc;
    spec.on_end = release;
    if (pilot) {
      spec.on_sigterm = [&ctld, &simulation](const slurm::JobRecord& rec) {
        const auto id = rec.id;
        simulation.after(SimTime::seconds(2),
                         [&ctld, id] { ctld.job_exited(id); });
      };
    }
    simulation.at(SimTime::minutes(rng.uniform_int(0, 180)),
                  [&ctld, spec] { ctld.submit(spec); });
  }
  // Generous horizon: queued pilots chain one after another (no
  // replenishment here), so the last chains can run far past the last
  // submission before timing out.
  simulation.run_until(SimTime::hours(12));
  for (const auto h : holder) EXPECT_EQ(h, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleLegality,
                         ::testing::Range<std::uint64_t>(10, 18));

}  // namespace
}  // namespace hpcwhisk
