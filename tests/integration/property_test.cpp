// Parameterized property tests: system invariants that must hold for
// every seed and both supply models, plus accounting identities of the
// analysis layer over randomized inputs.

#include <gtest/gtest.h>

#include "hpcwhisk/analysis/clairvoyant.hpp"
#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

// ---------------------------------------------------------------------
// Whole-system invariants, swept over (seed, supply model).
// ---------------------------------------------------------------------

struct SystemParam {
  std::uint64_t seed;
  core::SupplyModel model;
};

class SystemInvariants : public ::testing::TestWithParam<SystemParam> {};

TEST_P(SystemInvariants, HoldOverChurnyHour) {
  const auto param = GetParam();
  Simulation simulation;
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = param.seed;
  cfg.slurm.node_count = 48;
  cfg.manager.model = param.model;
  core::HpcWhiskSystem system{simulation, cfg};
  const auto functions =
      trace::register_sleep_functions(system.functions(), 25);

  trace::HpcWorkloadGenerator workload{simulation, system.slurm(), {},
                                       sim::Rng{param.seed * 77 + 1}};
  analysis::NodeStateLog log{48, SimTime::zero()};
  system.slurm().set_node_observer(
      [&log](const slurm::NodeTransition& t) { log.record(t); });

  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 8.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{param.seed * 77 + 2}};

  workload.start();
  system.start();
  faas.start(SimTime::hours(2));
  // Run past the load end so in-flight activations settle (their 5-min
  // timeouts are the worst case).
  simulation.run_until(SimTime::hours(2) + SimTime::minutes(10));
  log.finalize(simulation.now());

  // Invariant 1: every accepted activation reaches a terminal state and
  // the terminal counters balance exactly.
  const auto& c = system.controller().counters();
  std::size_t nonterminal = 0;
  for (const auto& rec : system.controller().activations())
    if (!whisk::is_terminal(rec.state)) ++nonterminal;
  EXPECT_EQ(nonterminal, 0u);
  EXPECT_EQ(c.accepted, c.completed + c.failed + c.timed_out);
  EXPECT_EQ(c.submitted, c.accepted + c.rejected_503);

  // Invariant 2: HPC jobs are never delayed beyond the grace period.
  const auto& sc = system.slurm().counters();
  EXPECT_GT(sc.started, 0u);
  // (Checked structurally: claims wait at most grace; verified per-job
  // in the integration suite. Here: no HPC job may still be pending
  // while nodes sit idle for long — spot-check the final state.)

  // Invariant 3: node-state intervals tile the timeline exactly.
  std::vector<double> node_time(48, 0.0);
  for (const auto& iv : log.intervals()) {
    EXPECT_GT(iv.end, iv.start);
    node_time[iv.node] += iv.length().to_seconds();
  }
  for (const double t : node_time)
    EXPECT_NEAR(t, simulation.now().to_seconds(), 1e-6);

  // Invariant 4: pilots only ever appear on otherwise-idle capacity;
  // the manager's accounting matches Slurm's.
  const auto& mc = system.manager().counters();
  EXPECT_EQ(mc.started,
            mc.preempted + mc.timed_out + mc.completed + mc.hard_killed +
                system.manager().active_pilots());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModels, SystemInvariants,
    ::testing::Values(SystemParam{1, core::SupplyModel::kFib},
                      SystemParam{2, core::SupplyModel::kFib},
                      SystemParam{3, core::SupplyModel::kFib},
                      SystemParam{4, core::SupplyModel::kVar},
                      SystemParam{5, core::SupplyModel::kVar},
                      SystemParam{6, core::SupplyModel::kVar}),
    [](const ::testing::TestParamInfo<SystemParam>& info) {
      return std::string(core::to_string(info.param.model)) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Clairvoyant accounting identity over randomized period populations.
// ---------------------------------------------------------------------

class ClairvoyantAccounting : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClairvoyantAccounting, SharesSumToOneAndJobsArePositive) {
  sim::Rng rng{GetParam()};
  std::vector<analysis::NodeInterval> periods;
  double t = 0;
  for (int i = 0; i < 500; ++i) {
    const double len = 0.2 + rng.exponential(6.0);  // minutes
    periods.push_back(analysis::NodeInterval{
        static_cast<std::uint32_t>(i % 16), slurm::ObservedNodeState::kIdle,
        SimTime::minutes(t), SimTime::minutes(t + len)});
    t += rng.uniform(0.0, 2.0);
  }
  for (const bool cut : {false, true}) {
    analysis::ClairvoyantSimulator::Config cfg;
    cfg.job_lengths = core::job_length_set("A1");
    cfg.allow_preemption_cut = cut;
    const auto r = analysis::ClairvoyantSimulator{cfg}.run(
        periods, SimTime::zero(), SimTime::minutes(t + 300));
    EXPECT_NEAR(r.warmup_share + r.ready_share + r.unused_share, 1.0, 1e-9);
    EXPECT_GT(r.jobs, 0u);
    if (cut) {
      EXPECT_DOUBLE_EQ(r.unused_share, 0.0);
    }
    EXPECT_GE(r.ready_workers.max, r.ready_workers.p75);
    EXPECT_LE(r.non_availability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClairvoyantAccounting,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Slurm schedule legality over random job mixes: no node is ever
// double-allocated, and preemptible jobs never block higher tiers past
// the grace period.
// ---------------------------------------------------------------------

class ScheduleLegality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleLegality, NoDoubleAllocationEver) {
  Simulation simulation;
  slurm::Slurmctld::Config cfg;
  cfg.node_count = 16;
  cfg.min_pass_gap = SimTime::zero();
  slurm::Slurmctld ctld{simulation, cfg, core::default_partitions()};

  // Track per-node occupancy via the observer; an allocation transition
  // on an occupied node would manifest as hpc->hpc with no idle between,
  // which record() cannot distinguish — so track via job callbacks.
  std::vector<slurm::JobId> holder(16, 0);
  sim::Rng rng{GetParam()};

  const auto check_alloc = [&holder](const slurm::JobRecord& rec) {
    for (const auto n : rec.nodes) {
      ASSERT_EQ(holder[n], 0u) << "node double-allocated";
      holder[n] = rec.id;
    }
  };
  const auto release = [&holder](const slurm::JobRecord& rec,
                                 slurm::EndReason) {
    for (const auto n : rec.nodes)
      if (holder[n] == rec.id) holder[n] = 0;
  };

  for (int i = 0; i < 120; ++i) {
    slurm::JobSpec spec;
    const bool pilot = rng.bernoulli(0.4);
    spec.partition = pilot ? "pilot" : "hpc";
    spec.num_nodes =
        pilot ? 1 : static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    spec.time_limit = SimTime::minutes(rng.uniform_int(2, 60));
    spec.actual_runtime =
        pilot ? SimTime::max() : SimTime::minutes(rng.uniform_int(1, 50));
    spec.on_start = check_alloc;
    spec.on_end = release;
    if (pilot) {
      spec.on_sigterm = [&ctld, &simulation](const slurm::JobRecord& rec) {
        const auto id = rec.id;
        simulation.after(SimTime::seconds(2),
                         [&ctld, id] { ctld.job_exited(id); });
      };
    }
    simulation.at(SimTime::minutes(rng.uniform_int(0, 180)),
                  [&ctld, spec] { ctld.submit(spec); });
  }
  // Generous horizon: queued pilots chain one after another (no
  // replenishment here), so the last chains can run far past the last
  // submission before timing out.
  simulation.run_until(SimTime::hours(12));
  for (const auto h : holder) EXPECT_EQ(h, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleLegality,
                         ::testing::Range<std::uint64_t>(10, 18));

}  // namespace
}  // namespace hpcwhisk
