// End-to-end integration tests over the full HPC-Whisk system (Fig. 4),
// checking the cross-module invariants the paper's design promises:
//   1. pilots never delay HPC jobs beyond pilot drain time;
//   2. accepted activations are never silently lost across worker churn
//      (completed / failed / timed-out — with graceful drains, requeued
//      work completes);
//   3. the fast lane preserves work across preemptions;
//   4. same seed => identical run.

#include <gtest/gtest.h>

#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

core::HpcWhiskSystem::Config small_system(std::uint32_t nodes,
                                          std::uint64_t seed = 1) {
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = nodes;
  cfg.slurm.min_pass_gap = SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = 3;
  return cfg;
}

TEST(EndToEnd, PilotsNeverDelayHpcJobsSignificantly) {
  Simulation simulation;
  core::HpcWhiskSystem system{simulation, small_system(8)};
  system.start();
  simulation.run_until(SimTime::minutes(5));  // pilots cover the cluster

  // Submit a wave of HPC jobs; each must start within drain time
  // (seconds), far below the 3-minute grace bound.
  std::vector<slurm::JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    slurm::JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = 2;
    spec.time_limit = SimTime::minutes(10);
    spec.actual_runtime = SimTime::minutes(10);
    jobs.push_back(system.slurm().submit(spec));
  }
  simulation.run_until(SimTime::minutes(10));
  for (const auto id : jobs) {
    const auto& rec = system.slurm().job(id);
    ASSERT_EQ(rec.state, slurm::JobState::kRunning);
    EXPECT_LE(rec.start_time - rec.submit_time, SimTime::minutes(3))
        << "HPC job delayed beyond the grace bound";
    EXPECT_LE(rec.start_time - rec.submit_time, SimTime::seconds(30))
        << "HPC job delayed beyond realistic drain time";
  }
}

TEST(EndToEnd, NoAcceptedActivationIsSilentlyLost) {
  Simulation simulation;
  core::HpcWhiskSystem system{simulation, small_system(6, 3)};
  const auto functions =
      trace::register_sleep_functions(system.functions(), 20,
                                      SimTime::seconds(2));
  system.start();
  simulation.run_until(SimTime::minutes(3));

  trace::FaasLoadGenerator::Config faas_cfg;
  faas_cfg.rate_qps = 5.0;
  faas_cfg.functions = functions;
  trace::FaasLoadGenerator faas{
      simulation, faas_cfg,
      [&system](const std::string& fn) { (void)system.controller().submit(fn); },
      sim::Rng{9}};
  faas.start(SimTime::minutes(33));

  // Churn: waves of HPC jobs preempt pilots throughout the load.
  simulation.every(SimTime::minutes(4), [&system, &simulation] {
    if (simulation.now() > SimTime::minutes(30)) return;
    slurm::JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = 4;
    spec.time_limit = SimTime::minutes(2);
    spec.actual_runtime = SimTime::minutes(2);
    system.slurm().submit(spec);
  });

  simulation.run_until(SimTime::minutes(45));

  std::size_t nonterminal = 0;
  for (const auto& rec : system.controller().activations()) {
    if (!whisk::is_terminal(rec.state)) ++nonterminal;
  }
  EXPECT_EQ(nonterminal, 0u)
      << "every accepted activation must reach a terminal state";
  // With graceful drains the overwhelming majority completes.
  const auto& c = system.controller().counters();
  EXPECT_GT(c.completed, c.accepted * 95 / 100);
  EXPECT_EQ(c.accepted,
            c.completed + c.failed + c.timed_out +
                0 /* queued/running checked above */)
      << "activation accounting must balance";
}

TEST(EndToEnd, FastLanePreservesWorkAcrossPreemption) {
  Simulation simulation;
  auto cfg = small_system(2, 5);
  cfg.manager.invoker.max_concurrent = 1;  // force buffered backlog
  core::HpcWhiskSystem system{simulation, cfg};
  whisk::FunctionSpec slowfn =
      whisk::fixed_duration_function("slowfn", SimTime::seconds(30));
  slowfn.timeout = SimTime::minutes(15);  // outlive the preemption wave
  system.functions().put(slowfn);
  system.start();
  simulation.run_until(SimTime::minutes(2));
  ASSERT_GE(system.controller().healthy_count(), 1u);

  // Queue several slow calls, then preempt everything.
  std::vector<whisk::ActivationId> ids;
  for (int i = 0; i < 6; ++i) {
    const auto result = system.controller().submit("slowfn");
    ASSERT_TRUE(result.accepted);
    ids.push_back(result.activation);
  }
  simulation.after(SimTime::seconds(10), [&system] {
    slurm::JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = 2;
    spec.time_limit = SimTime::minutes(3);
    spec.actual_runtime = SimTime::minutes(3);
    system.slurm().submit(spec);
  });
  simulation.run_until(SimTime::minutes(20));

  // After the HPC wave passes, pilots return and every call completes.
  std::size_t completed = 0, requeued = 0;
  for (const auto id : ids) {
    const auto& rec = system.controller().activation(id);
    if (rec.state == whisk::ActivationState::kCompleted) ++completed;
    requeued += rec.requeues;
  }
  EXPECT_EQ(completed, ids.size());
  EXPECT_GT(requeued, 0u) << "the drain must have rerouted work";
}

TEST(EndToEnd, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    Simulation simulation;
    core::HpcWhiskSystem system{simulation, small_system(32, seed)};
    const auto functions =
        trace::register_sleep_functions(system.functions(), 10);
    trace::HpcWorkloadGenerator workload{simulation, system.slurm(), {},
                                         sim::Rng{seed}};
    trace::FaasLoadGenerator faas{
        simulation,
        {.rate_qps = 5.0, .functions = functions},
        [&system](const std::string& fn) {
          (void)system.controller().submit(fn);
        },
        sim::Rng{seed + 1}};
    workload.start();
    system.start();
    faas.start(SimTime::hours(1));
    simulation.run_until(SimTime::hours(1));
    const auto& c = system.controller().counters();
    return std::tuple{c.submitted, c.completed, c.rejected_503, c.requeued,
                      system.slurm().counters().started,
                      system.slurm().counters().completed,
                      system.manager().counters().preempted,
                      system.manager().counters().started};
  };
  EXPECT_EQ(run(17), run(17));
  EXPECT_NE(run(17), run(18));  // different seed changes the run
}

TEST(EndToEnd, NodeFailureIsAbsorbed) {
  Simulation simulation;
  core::HpcWhiskSystem system{simulation, small_system(4, 7)};
  const auto functions =
      trace::register_sleep_functions(system.functions(), 5);
  system.start();
  simulation.run_until(SimTime::minutes(2));
  const std::size_t healthy_before = system.controller().healthy_count();
  ASSERT_GE(healthy_before, 1u);

  // Kill a node under a pilot: hard kill, no drain.
  simulation.after(SimTime::seconds(1),
                   [&system] { system.slurm().set_node_down(0); });
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 5.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{8}};
  faas.start(SimTime::minutes(10));
  simulation.run_until(SimTime::minutes(12));

  // The watchdog must have detected the silent invoker...
  EXPECT_GE(system.controller().counters().unresponsive_detected, 1u);
  // ...and the system keeps serving on the remaining nodes.
  EXPECT_GT(system.controller().counters().completed, 0u);
  std::size_t nonterminal = 0;
  for (const auto& rec : system.controller().activations())
    if (!whisk::is_terminal(rec.state)) ++nonterminal;
  EXPECT_EQ(nonterminal, 0u);
}

}  // namespace
}  // namespace hpcwhisk
