// Lease tier under faults: killing the node (or the invoker process)
// that backs active leases must revoke them, re-route the hot functions,
// and never double-execute or lose an activation — the conservation
// audit is the arbiter.

#include <gtest/gtest.h>

#include "hpcwhisk/analysis/conservation.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/fault/chaos_engine.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

core::HpcWhiskSystem::Config lease_system(std::uint32_t nodes,
                                          std::uint64_t seed) {
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = nodes;
  cfg.slurm.min_pass_gap = SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = 3;
  cfg.controller.lease.enabled = true;
  // The light test load (4 QPS over 2 hot functions => ~0.5 s gaps) must
  // clear the hot bar comfortably.
  cfg.controller.lease.hot_interarrival = SimTime::seconds(2);
  cfg.controller.lease.warm_interarrival = SimTime::seconds(10);
  cfg.controller.lease.term = SimTime::minutes(1);
  return cfg;
}

/// Two-function hot load over [2min, 20min); drains past every client
/// timeout before returning.
void run_with_hot_load(Simulation& simulation, core::HpcWhiskSystem& system,
                       std::uint64_t load_seed) {
  const auto functions =
      trace::register_sleep_functions(system.functions(), 2,
                                      SimTime::seconds(2));
  system.start();
  simulation.run_until(SimTime::minutes(2));
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 4.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{load_seed}};
  faas.start(SimTime::minutes(20));
  simulation.run_until(SimTime::minutes(30));
}

TEST(LeaseChaos, NodeKillRevokesLeasesWithoutDoubleExecution) {
  Simulation simulation;
  auto cfg = lease_system(4, 7);
  // Kill every node once, staggered, so whichever invoker holds the
  // leases is guaranteed to die while they are active.
  for (std::uint32_t n = 0; n < 4; ++n) {
    fault::FaultEvent ev;
    ev.at = SimTime::minutes(5) + SimTime::seconds(30 * n);
    ev.kind = fault::FaultKind::kNodeCrash;
    ev.grace = SimTime::seconds(5);  // truncated: SIGKILL before hand-off
    ev.outage = SimTime::minutes(1);
    ev.target = n;
    cfg.faults.add(ev);
  }
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_hot_load(simulation, system, 9);

  const auto* leases = system.controller().lease_manager();
  ASSERT_NE(leases, nullptr);
  EXPECT_GT(leases->stats().granted, 0u) << "the hot load never leased";
  EXPECT_GT(system.controller().counters().lease_hits, 0u);
  EXPECT_GE(leases->stats().revoked, 1u)
      << "killing every node must revoke the active leases";

  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
  EXPECT_EQ(result.double_terminal, 0u);
  EXPECT_GT(result.completed, 0u);
}

TEST(LeaseChaos, GracefulPreemptionRevokesAndRelocatesLeases) {
  Simulation simulation;
  // No injected faults: C1 fib jobs preempt pilots naturally (Slurm
  // CANCEL with grace), each drain revoking the departing worker's
  // leases; the hot functions re-lease on the survivors.
  auto cfg = lease_system(3, 21);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_hot_load(simulation, system, 23);

  const auto* leases = system.controller().lease_manager();
  ASSERT_NE(leases, nullptr);
  EXPECT_GT(leases->stats().granted, 0u);
  EXPECT_GT(system.controller().counters().lease_hits, 0u);
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
  EXPECT_EQ(result.double_terminal, 0u);
}

TEST(LeaseChaos, InvokerCrashUnderLeaseLoadKeepsTheLedgerClean) {
  Simulation simulation;
  auto cfg = lease_system(4, 17);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(6);
  ev.kind = fault::FaultKind::kInvokerCrash;
  cfg.faults.add(ev);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_hot_load(simulation, system, 19);

  ASSERT_EQ(system.chaos()->counters().applied, 1u);
  EXPECT_GE(system.controller().counters().unresponsive_detected, 1u);
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
  EXPECT_EQ(result.double_terminal, 0u);
}

}  // namespace
}  // namespace hpcwhisk
