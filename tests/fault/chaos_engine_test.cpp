// Targeted chaos scenarios against a small end-to-end system: each fault
// kind must be absorbed by the recovery machinery it aims at, and the
// conservation audit must hold afterwards.

#include <gtest/gtest.h>

#include "hpcwhisk/analysis/conservation.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/fault/chaos_engine.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

core::HpcWhiskSystem::Config small_system(std::uint32_t nodes,
                                          std::uint64_t seed) {
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = nodes;
  cfg.slurm.min_pass_gap = SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = 3;
  return cfg;
}

/// Drives a light sleep-function load over [2min, 20min) and runs the
/// simulation until every client timeout passed.
void run_with_load(Simulation& simulation, core::HpcWhiskSystem& system,
                   std::uint64_t load_seed) {
  const auto functions =
      trace::register_sleep_functions(system.functions(), 8,
                                      SimTime::seconds(2));
  system.start();
  simulation.run_until(SimTime::minutes(2));
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 4.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{load_seed}};
  faas.start(SimTime::minutes(20));
  // Default FunctionSpec timeout is 5 minutes; 30 min > 20 min + 5 min.
  simulation.run_until(SimTime::minutes(30));
}

TEST(ChaosEngine, NodeCrashIsAbsorbedAndRecovers) {
  Simulation simulation;
  auto cfg = small_system(4, 7);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(5);
  ev.kind = fault::FaultKind::kNodeCrash;
  ev.grace = SimTime::seconds(5);  // truncated: far below the 3 min grace
  ev.outage = SimTime::minutes(1);
  cfg.faults.add(ev);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_load(simulation, system, 9);

  ASSERT_NE(system.chaos(), nullptr);
  ASSERT_EQ(system.chaos()->counters().applied, 1u);
  EXPECT_GE(system.slurm().counters().node_failures, 1u);
  const auto& applied = system.chaos()->applied();
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_NE(applied[0].recovery, SimTime::max())
      << "capacity must return after the outage";
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
}

TEST(ChaosEngine, InvokerStallTripsWatchdogThenReadmits) {
  Simulation simulation;
  auto cfg = small_system(4, 11);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(5);
  ev.kind = fault::FaultKind::kInvokerStall;
  ev.stall = SimTime::seconds(30);  // > 3 missed heartbeats at 2 s
  cfg.faults.add(ev);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_load(simulation, system, 13);

  ASSERT_EQ(system.chaos()->counters().applied, 1u);
  EXPECT_GE(system.controller().counters().unresponsive_detected, 1u);
  ASSERT_EQ(system.chaos()->applied().size(), 1u);
  EXPECT_NE(system.chaos()->applied()[0].recovery, SimTime::max())
      << "the thawed invoker heartbeats and is readmitted";
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
}

TEST(ChaosEngine, InvokerCrashLosesNothing) {
  Simulation simulation;
  auto cfg = small_system(4, 17);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(6);
  ev.kind = fault::FaultKind::kInvokerCrash;
  cfg.faults.add(ev);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_load(simulation, system, 19);

  ASSERT_EQ(system.chaos()->counters().applied, 1u);
  EXPECT_GE(system.controller().counters().unresponsive_detected, 1u);
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
}

TEST(ChaosEngine, MqDropWindowOnlyCostsRetriesOrTimeouts) {
  Simulation simulation;
  auto cfg = small_system(4, 23);
  fault::FaultEvent ev;
  ev.at = SimTime::minutes(5);
  ev.kind = fault::FaultKind::kMqDrop;
  ev.window = SimTime::minutes(1);
  ev.probability = 1.0;
  cfg.faults.add(ev);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  run_with_load(simulation, system, 29);

  ASSERT_EQ(system.chaos()->counters().applied, 1u);
  std::uint64_t dropped = 0;
  for (const auto& name : system.broker().topic_names())
    dropped += system.broker().topic(name).counters().fault_dropped;
  EXPECT_GT(dropped, 0u) << "the window must have swallowed publishes";
  const auto result = audit.finalize();
  EXPECT_TRUE(result.ok()) << result.report();
  // Dropped submissions surface as client timeouts, never as lost ids.
  EXPECT_GT(result.completed, 0u);
}

TEST(ChaosEngine, EmptyPlanConstructsNoEngine) {
  Simulation simulation;
  core::HpcWhiskSystem system{simulation, small_system(4, 31)};
  EXPECT_EQ(system.chaos(), nullptr);
}

}  // namespace
}  // namespace hpcwhisk
