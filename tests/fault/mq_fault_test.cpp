// The mq injection seam in isolation: per-topic fault filters dropping,
// delaying and duplicating publishes, and broker-wide installation via
// the topic hook.

#include <gtest/gtest.h>

#include <algorithm>

#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/mq/topic.hpp"
#include "hpcwhisk/sim/simulation.hpp"

namespace hpcwhisk::mq {
namespace {

using sim::SimTime;
using sim::Simulation;

Message msg(std::uint64_t id) {
  Message m;
  m.id = id;
  m.key = "fn";
  return m;
}

TEST(TopicFault, DropSwallowsThePublish) {
  Topic topic{"t"};
  topic.set_fault_filter(
      [](const Message&) {
        Topic::FaultAction a;
        a.drop = true;
        return a;
      },
      nullptr);
  topic.publish(msg(1), SimTime::zero());
  EXPECT_EQ(topic.size(), 0u);
  EXPECT_EQ(topic.counters().published, 0u);
  EXPECT_EQ(topic.counters().fault_dropped, 1u);
}

TEST(TopicFault, DelayHoldsDeliveryOnTheVirtualClock) {
  Simulation sim;
  Topic topic{"t"};
  topic.set_fault_filter(
      [](const Message&) {
        Topic::FaultAction a;
        a.delay = SimTime::seconds(5);
        return a;
      },
      &sim);
  topic.publish(msg(1), sim.now());
  EXPECT_EQ(topic.size(), 0u) << "message must be in flight, not queued";
  EXPECT_EQ(topic.counters().fault_delayed, 1u);
  sim.run_until(SimTime::seconds(5));
  ASSERT_EQ(topic.size(), 1u);
  const auto m = topic.poll_one();
  ASSERT_TRUE(m.has_value());
  // The message materialized at delivery time.
  EXPECT_EQ(m->first_published, SimTime::seconds(5));
}

TEST(TopicFault, DelayWithoutSimulationDegradesToImmediate) {
  Topic topic{"t"};
  topic.set_fault_filter(
      [](const Message&) {
        Topic::FaultAction a;
        a.delay = SimTime::seconds(5);
        return a;
      },
      nullptr);
  topic.publish(msg(1), SimTime::zero());
  EXPECT_EQ(topic.size(), 1u);
  EXPECT_EQ(topic.counters().fault_delayed, 0u);
}

TEST(TopicFault, DuplicateEnqueuesExtraCopies) {
  Topic topic{"t"};
  topic.set_fault_filter(
      [](const Message&) {
        Topic::FaultAction a;
        a.extra_copies = 2;
        return a;
      },
      nullptr);
  topic.publish(msg(7), SimTime::zero());
  EXPECT_EQ(topic.size(), 3u);
  EXPECT_EQ(topic.counters().fault_duplicated, 2u);
  // All copies carry the same activation id: the consumer-side
  // deliverable() guard is what must dedup them.
  for (int i = 0; i < 3; ++i) {
    const auto m = topic.poll_one();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->id, 7u);
  }
}

TEST(TopicFault, ClearedFilterRestoresNormalDelivery) {
  Topic topic{"t"};
  topic.set_fault_filter(
      [](const Message&) {
        Topic::FaultAction a;
        a.drop = true;
        return a;
      },
      nullptr);
  topic.publish(msg(1), SimTime::zero());
  topic.set_fault_filter(nullptr, nullptr);
  topic.publish(msg(2), SimTime::zero());
  EXPECT_EQ(topic.size(), 1u);
}

TEST(BrokerFault, TopicHookCoversExistingAndFutureTopics) {
  Broker broker;
  Topic& existing = broker.topic("pre");
  broker.set_topic_hook([](Topic& t) {
    t.set_fault_filter(
        [](const Message&) {
          Topic::FaultAction a;
          a.drop = true;
          return a;
        },
        nullptr);
  });
  Topic& later = broker.topic("post");
  existing.publish(msg(1), SimTime::zero());
  later.publish(msg(2), SimTime::zero());
  EXPECT_EQ(existing.counters().fault_dropped, 1u);
  EXPECT_EQ(later.counters().fault_dropped, 1u);
}

TEST(BrokerFault, TopicNamesAreSorted) {
  Broker broker;
  broker.topic("zeta");
  broker.topic("alpha");
  broker.topic("midway");
  const auto names = broker.topic_names();
  ASSERT_TRUE(std::is_sorted(names.begin(), names.end()));
  // fast-lane is created by the broker itself.
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace hpcwhisk::mq
