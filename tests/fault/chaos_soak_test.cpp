// Multi-seed chaos soak: sampled fault plans over many seeds, each run
// checked against the activation-conservation audit; plus the
// reproducibility contract — two same-seed runs produce byte-identical
// audit and chaos reports. The seeds fan out over exec::parallel_trials
// (HW_BENCH_JOBS), which also exercises the runner under real
// simulation load.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "hpcwhisk/analysis/conservation.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/exec/parallel_trials.hpp"
#include "hpcwhisk/fault/chaos_engine.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"

namespace hpcwhisk {
namespace {

using sim::SimTime;
using sim::Simulation;

fault::FaultProfile soak_profile() {
  fault::FaultProfile p;
  p.start = SimTime::minutes(3);
  p.horizon = SimTime::minutes(20);
  p.node_crash_rate_per_hour = 6.0;
  p.invoker_stall_rate_per_hour = 9.0;
  p.invoker_crash_rate_per_hour = 6.0;
  p.mq_fault_rate_per_hour = 9.0;
  p.mean_outage = SimTime::minutes(2);
  p.mean_stall = SimTime::seconds(30);
  return p;
}

struct SoakOutcome {
  std::string audit_report;
  std::string chaos_report;
  std::uint64_t faults_applied{0};
  bool ok{false};
};

SoakOutcome run_soak(std::uint64_t seed) {
  Simulation simulation;
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = 6;
  cfg.slurm.min_pass_gap = SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = 3;
  cfg.faults = fault::FaultPlan::sample(soak_profile(), seed * 1000 + 17);
  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};

  const auto functions =
      trace::register_sleep_functions(system.functions(), 10,
                                      SimTime::seconds(2));
  system.start();
  simulation.run_until(SimTime::minutes(2));
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = 4.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{seed + 101}};
  faas.start(SimTime::minutes(23));
  // Last submission at 23 min, client timeout 5 min: by 30 min every
  // accepted activation must have terminated.
  simulation.run_until(SimTime::minutes(30));

  SoakOutcome out;
  const auto result = audit.finalize();
  out.ok = result.ok();
  out.audit_report = result.report();
  out.chaos_report =
      system.chaos() == nullptr ? "" : system.chaos()->report();
  out.faults_applied =
      system.chaos() == nullptr ? 0 : system.chaos()->counters().applied;
  return out;
}

TEST(ChaosSoak, ConservationHoldsAcrossTwentySeeds) {
  std::vector<std::uint64_t> seeds(20);
  std::iota(seeds.begin(), seeds.end(), 1);
  const std::vector<SoakOutcome> outcomes = exec::parallel_trials(
      seeds, [](const std::uint64_t seed, std::ostream&) {
        return run_soak(seed);
      });
  ASSERT_EQ(outcomes.size(), seeds.size());
  std::uint64_t total_faults = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const SoakOutcome& out = outcomes[i];
    EXPECT_TRUE(out.ok) << "seed " << seeds[i] << ":\n"
                        << out.audit_report << out.chaos_report;
    total_faults += out.faults_applied;
  }
  // The profile averages ~10 faults per run; a silent no-op engine would
  // make the soak vacuous.
  EXPECT_GT(total_faults, 50u);
}

TEST(ChaosSoak, SameSeedRunsAreByteIdentical) {
  const SoakOutcome a = run_soak(5);
  const SoakOutcome b = run_soak(5);
  EXPECT_TRUE(a.ok) << a.audit_report;
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_EQ(a.audit_report, b.audit_report);
  EXPECT_EQ(a.chaos_report, b.chaos_report);

  const SoakOutcome c = run_soak(6);
  EXPECT_NE(a.chaos_report, c.chaos_report)
      << "different seeds must produce different failure histories";
}

}  // namespace
}  // namespace hpcwhisk
