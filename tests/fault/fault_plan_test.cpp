#include "hpcwhisk/fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::fault {
namespace {

using sim::SimTime;

FaultProfile busy_profile() {
  FaultProfile p;
  p.start = SimTime::minutes(5);
  p.horizon = SimTime::hours(2);
  p.node_crash_rate_per_hour = 3.0;
  p.invoker_stall_rate_per_hour = 4.0;
  p.invoker_crash_rate_per_hour = 2.0;
  p.mq_fault_rate_per_hour = 5.0;
  return p;
}

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.at == b.at && a.kind == b.kind && a.grace == b.grace &&
         a.outage == b.outage && a.stall == b.stall && a.window == b.window &&
         a.probability == b.probability && a.delay == b.delay &&
         a.copies == b.copies && a.target == b.target;
}

TEST(FaultPlan, SampleIsDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::sample(busy_profile(), 42);
  const FaultPlan b = FaultPlan::sample(busy_profile(), 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_event(a.events()[i], b.events()[i])) << "event " << i;

  const FaultPlan c = FaultPlan::sample(busy_profile(), 43);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = !same_event(a.events()[i], c.events()[i]);
  EXPECT_TRUE(differs) << "different seeds must sample different plans";
}

TEST(FaultPlan, EventsSortedAndInsideTheWindow) {
  const FaultProfile p = busy_profile();
  const FaultPlan plan = FaultPlan::sample(p, 7);
  ASSERT_FALSE(plan.empty());
  SimTime prev = SimTime::zero();
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_GE(ev.at, prev);
    EXPECT_GE(ev.at, p.start);
    EXPECT_LT(ev.at, p.start + p.horizon);
    prev = ev.at;
  }
}

TEST(FaultPlan, ZeroRatesSampleNothing) {
  FaultProfile p;  // all rates default to 0
  EXPECT_TRUE(FaultPlan::sample(p, 1).empty());
}

TEST(FaultPlan, HigherRatesYieldMoreEvents) {
  FaultProfile low = busy_profile();
  FaultProfile high = busy_profile();
  high.node_crash_rate_per_hour *= 10;
  high.invoker_stall_rate_per_hour *= 10;
  high.invoker_crash_rate_per_hour *= 10;
  high.mq_fault_rate_per_hour *= 10;
  EXPECT_GT(FaultPlan::sample(high, 11).size(),
            FaultPlan::sample(low, 11).size());
}

TEST(FaultPlan, EnablingOneClassDoesNotReshuffleAnother) {
  FaultProfile only_nodes = busy_profile();
  only_nodes.invoker_stall_rate_per_hour = 0;
  only_nodes.invoker_crash_rate_per_hour = 0;
  only_nodes.mq_fault_rate_per_hour = 0;
  const FaultPlan reference = FaultPlan::sample(only_nodes, 5);
  const FaultPlan combined = FaultPlan::sample(busy_profile(), 5);

  std::vector<FaultEvent> node_events;
  for (const FaultEvent& ev : combined.events())
    if (ev.kind == FaultKind::kNodeCrash) node_events.push_back(ev);
  ASSERT_EQ(node_events.size(), reference.size());
  for (std::size_t i = 0; i < node_events.size(); ++i)
    EXPECT_TRUE(same_event(node_events[i], reference.events()[i]));
}

TEST(FaultPlan, ManualPlanKeepsInsertionData) {
  FaultPlan plan;
  FaultEvent ev;
  ev.at = SimTime::minutes(10);
  ev.kind = FaultKind::kInvokerStall;
  ev.stall = SimTime::seconds(20);
  ev.target = 3;
  plan.add(ev);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(same_event(plan.events()[0], ev));
  EXPECT_STREQ(to_string(plan.events()[0].kind), "invoker-stall");
}

}  // namespace
}  // namespace hpcwhisk::fault
