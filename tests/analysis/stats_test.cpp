#include "hpcwhisk/analysis/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hpcwhisk/analysis/report.hpp"
#include "hpcwhisk/sim/rng.hpp"

namespace hpcwhisk::analysis {
namespace {

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, SummaryQuartilesAndMean) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p25, 25.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p75, 75.0);
  EXPECT_DOUBLE_EQ(s.avg, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Stats, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_DOUBLE_EQ(s.avg, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(Stats, CdfPointsMonotonic) {
  std::vector<double> xs;
  sim::Rng rng{1};
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(0, 100));
  const auto points = cdf_points(xs, 25);
  ASSERT_GE(points.size(), 2u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].value, points[i - 1].value);
    EXPECT_GT(points[i].prob, points[i - 1].prob);
  }
  EXPECT_DOUBLE_EQ(points.back().prob, 1.0);
  EXPECT_LE(points.size(), 27u);
}

TEST(Stats, FractionAtMost) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_at_most(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_most(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_at_most(xs, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_at_most({}, 1.0), 0.0);
}

TEST(Stats, LongestRun) {
  const std::vector<int> xs{0, 1, 1, 1, 0, 1, 1, 0};
  EXPECT_EQ(longest_run(xs, [](int x) { return x == 1; }), 3u);
  EXPECT_EQ(longest_run(xs, [](int x) { return x == 2; }), 0u);
}

TEST(Report, FormattersRound) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.5, 0), "2");
  EXPECT_EQ(fmt_pct(0.12345, 2), "12.35%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Report, TableAlignsColumns) {
  std::ostringstream os;
  print_table(os, "t", {"a", "long-header"}, {{"xxx", "1"}, {"y", "22"}});
  const std::string out = os.str();
  EXPECT_NE(out.find("== t =="), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  // Every data row must have the same width.
  std::istringstream is{out};
  std::string line;
  std::size_t width = 0;
  std::getline(is, line);  // title
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '-') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Report, SlurmLevelReportComputesCoverage) {
  std::vector<StateCounts> samples(4);
  for (auto& s : samples) {
    s.pilot = 3;
    s.idle = 1;
    s.hpc = 10;
  }
  samples[3].pilot = 0;
  samples[3].idle = 0;
  const auto report = slurm_level_report(samples);
  // covered = 9 pilot samples of 12 available samples.
  EXPECT_NEAR(report.coverage, 9.0 / 12.0, 1e-9);
  EXPECT_NEAR(report.zero_available_share, 0.25, 1e-9);
  EXPECT_NEAR(report.zero_pilot_share, 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(report.pilot_workers.max, 3.0);
}

TEST(Report, SeriesDownsamplesByAveraging) {
  std::ostringstream os;
  std::vector<double> xs(100, 0.0);
  for (std::size_t i = 50; i < 100; ++i) xs[i] = 10.0;
  print_series(os, "s", xs, 1.0, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("-- series: s"), std::string::npos);
  // First bucket all zeros, last bucket all tens.
  EXPECT_NE(out.find("0 0.00"), std::string::npos);
  EXPECT_NE(out.find("90 10.00"), std::string::npos);
}

}  // namespace
}  // namespace hpcwhisk::analysis
