#include "hpcwhisk/analysis/clairvoyant.hpp"

#include <gtest/gtest.h>

#include "hpcwhisk/core/job_manager.hpp"

namespace hpcwhisk::analysis {
namespace {

using slurm::ObservedNodeState;
using sim::SimTime;

NodeInterval period(std::uint32_t node, double start_min, double end_min) {
  return NodeInterval{node, ObservedNodeState::kIdle,
                      SimTime::minutes(start_min), SimTime::minutes(end_min)};
}

ClairvoyantSimulator::Config config(std::vector<int> lengths_min,
                                    double warmup_s = 20.0) {
  ClairvoyantSimulator::Config cfg;
  for (const int m : lengths_min)
    cfg.job_lengths.push_back(SimTime::minutes(m));
  cfg.warmup = SimTime::seconds(warmup_s);
  cfg.max_job_length = SimTime::minutes(120);
  return cfg;
}

TEST(Clairvoyant, PaperExampleA1Fills21MinutePeriod) {
  // Sec. IV-B: "when we considered set A1 and node x that was idle for 21
  // minutes, we allotted it with jobs of 14 and 6 minutes, respectively,
  // and 1 minute was not used."
  const ClairvoyantSimulator clairvoyant{config({2, 4, 6, 8, 14, 22, 34, 56, 90})};
  const auto r = clairvoyant.run({period(0, 0, 21)}, SimTime::zero(),
                                 SimTime::minutes(21));
  EXPECT_EQ(r.jobs, 2u);  // 14 + 6
  const double total = 21 * 60;
  EXPECT_NEAR(r.unused_share, 60.0 / total, 1e-9);
  EXPECT_NEAR(r.warmup_share, 40.0 / total, 1e-9);
  EXPECT_NEAR(r.ready_share, (total - 100.0) / total, 1e-9);
}

TEST(Clairvoyant, GreedyPicksLongestFitting) {
  const ClairvoyantSimulator clairvoyant{config({2, 10, 30})};
  const auto r = clairvoyant.run({period(0, 0, 45)}, SimTime::zero(),
                                 SimTime::minutes(45));
  // 30 + 10 + 2 + 2 = 44, 1 min unused.
  EXPECT_EQ(r.jobs, 4u);
  EXPECT_NEAR(r.unused_share, 1.0 / 45.0, 1e-9);
}

TEST(Clairvoyant, PeriodShorterThanShortestJobIsUnused) {
  const ClairvoyantSimulator clairvoyant{config({2, 4})};
  const auto r = clairvoyant.run({period(0, 0, 1.5)}, SimTime::zero(),
                                 SimTime::minutes(2));
  EXPECT_EQ(r.jobs, 0u);
  EXPECT_DOUBLE_EQ(r.unused_share, 1.0);
}

TEST(Clairvoyant, MaxJobLengthCapsPlacement) {
  auto cfg = config({2, 200});
  cfg.max_job_length = SimTime::minutes(120);
  const ClairvoyantSimulator clairvoyant{cfg};
  const auto r = clairvoyant.run({period(0, 0, 300)}, SimTime::zero(),
                                 SimTime::minutes(300));
  // The 200-minute job exceeds the cap: only 2-minute jobs are placed.
  EXPECT_EQ(r.jobs, 150u);
}

TEST(Clairvoyant, PreemptionCutUsesWholePeriod) {
  auto cfg = config({2, 4, 90});
  cfg.allow_preemption_cut = true;
  const ClairvoyantSimulator clairvoyant{cfg};
  const auto r = clairvoyant.run({period(0, 0, 5)}, SimTime::zero(),
                                 SimTime::minutes(5));
  EXPECT_DOUBLE_EQ(r.unused_share, 0.0);
  EXPECT_GE(r.jobs, 1u);
}

TEST(Clairvoyant, ReadyWorkerSeriesCountsOverlap) {
  const ClairvoyantSimulator clairvoyant{config({10}, /*warmup_s=*/60)};
  // Two nodes idle in parallel for 10 minutes.
  const auto r = clairvoyant.run({period(0, 0, 10), period(1, 0, 10)},
                                 SimTime::zero(), SimTime::minutes(10));
  EXPECT_EQ(r.jobs, 2u);
  // After the 1-minute warm-up, both are ready: P75 of the series = 2.
  EXPECT_EQ(r.ready_workers.p75, 2);
  EXPECT_GT(r.ready_workers.avg, 1.5);
  // First minute: zero ready (warm-up).
  EXPECT_GT(r.non_availability, 0.05);
}

TEST(Clairvoyant, NonAvailabilityDetectsGaps) {
  const ClairvoyantSimulator clairvoyant{config({2}, /*warmup_s=*/0)};
  // Available only in the first half of the horizon.
  const auto r = clairvoyant.run({period(0, 0, 30)}, SimTime::zero(),
                                 SimTime::minutes(60));
  EXPECT_NEAR(r.non_availability, 0.5, 0.05);
}

TEST(Clairvoyant, HorizonClipsPeriods) {
  const ClairvoyantSimulator clairvoyant{config({2})};
  const auto r = clairvoyant.run({period(0, 0, 100)}, SimTime::minutes(50),
                                 SimTime::minutes(60));
  // Only 10 minutes fall inside the horizon: 5 jobs.
  EXPECT_EQ(r.jobs, 5u);
}

TEST(Clairvoyant, TableIShapeHolds) {
  // Property: on a realistic mixed period population, every Table I set
  // achieves a ready share within a narrow band, and B (powers of two)
  // never beats A1 — the paper's qualitative finding.
  sim::Rng rng{42};
  std::vector<NodeInterval> periods;
  double t = 0;
  for (int i = 0; i < 4000; ++i) {
    const double len = std::min(180.0, rng.exponential(5.0));  // minutes
    periods.push_back(period(static_cast<std::uint32_t>(i % 64), t, t + len));
    t += 1.0;
  }
  const auto evaluate = [&](const char* name) {
    ClairvoyantSimulator::Config cfg;
    cfg.job_lengths = core::job_length_set(name);
    cfg.max_job_length = SimTime::minutes(120);
    return ClairvoyantSimulator{cfg}
        .run(periods, SimTime::zero(), SimTime::minutes(400))
        .ready_share;
  };
  const double a1 = evaluate("A1");
  const double b = evaluate("B");
  const double c2 = evaluate("C2");
  EXPECT_GE(a1, b);         // A1 beats powers-of-two
  EXPECT_GE(c2, a1 - 1e-9); // the finest set is at least as good
  EXPECT_NEAR(a1, b, 0.05); // ...but the differences are small
}

TEST(Clairvoyant, RejectsBadConfig) {
  EXPECT_THROW(ClairvoyantSimulator{ClairvoyantSimulator::Config{}},
               std::invalid_argument);
  EXPECT_THROW(ClairvoyantSimulator{config({4, 2})},  // unsorted
               std::invalid_argument);
  const ClairvoyantSimulator ok{config({2})};
  EXPECT_THROW(ok.run({}, SimTime::minutes(1), SimTime::minutes(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpcwhisk::analysis
