#include "hpcwhisk/analysis/node_state_log.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::analysis {
namespace {

using slurm::NodeTransition;
using slurm::ObservedNodeState;
using sim::SimTime;

TEST(NodeStateLog, RecordsIntervalsBetweenTransitions) {
  NodeStateLog log{2, SimTime::zero()};
  log.record({SimTime::minutes(1), 0, ObservedNodeState::kHpc});
  log.record({SimTime::minutes(3), 0, ObservedNodeState::kIdle});
  log.finalize(SimTime::minutes(10));
  const auto& ivs = log.intervals();
  ASSERT_EQ(ivs.size(), 4u);  // node0: idle/hpc/idle; node1: idle
  EXPECT_EQ(ivs[0].state, ObservedNodeState::kIdle);
  EXPECT_EQ(ivs[0].length(), SimTime::minutes(1));
  EXPECT_EQ(ivs[1].state, ObservedNodeState::kHpc);
  EXPECT_EQ(ivs[1].length(), SimTime::minutes(2));
  EXPECT_EQ(ivs[2].state, ObservedNodeState::kIdle);
  EXPECT_EQ(ivs[2].length(), SimTime::minutes(7));
  EXPECT_EQ(ivs[3].node, 1u);
  EXPECT_EQ(ivs[3].length(), SimTime::minutes(10));
}

TEST(NodeStateLog, IgnoresNoOpTransitions) {
  NodeStateLog log{1, SimTime::zero()};
  log.record({SimTime::minutes(1), 0, ObservedNodeState::kIdle});  // no-op
  log.finalize(SimTime::minutes(2));
  EXPECT_EQ(log.intervals().size(), 1u);
}

TEST(NodeStateLog, ZeroLengthIntervalsDropped) {
  NodeStateLog log{1, SimTime::zero()};
  log.record({SimTime::zero(), 0, ObservedNodeState::kHpc});
  log.finalize(SimTime::minutes(1));
  ASSERT_EQ(log.intervals().size(), 1u);
  EXPECT_EQ(log.intervals()[0].state, ObservedNodeState::kHpc);
}

TEST(NodeStateLog, MergedPeriodsJoinAdjacentQualifyingStates) {
  NodeStateLog log{1, SimTime::zero()};
  // idle(0-2) pilot(2-5) idle(5-6) hpc(6-8) idle(8-10)
  log.record({SimTime::minutes(2), 0, ObservedNodeState::kPilot});
  log.record({SimTime::minutes(5), 0, ObservedNodeState::kIdle});
  log.record({SimTime::minutes(6), 0, ObservedNodeState::kHpc});
  log.record({SimTime::minutes(8), 0, ObservedNodeState::kIdle});
  log.finalize(SimTime::minutes(10));

  const auto available =
      log.merged_periods({ObservedNodeState::kIdle, ObservedNodeState::kPilot});
  ASSERT_EQ(available.size(), 2u);
  EXPECT_EQ(available[0].length(), SimTime::minutes(6));  // 0-6 merged
  EXPECT_EQ(available[1].length(), SimTime::minutes(2));  // 8-10

  const auto idle_only = log.merged_periods({ObservedNodeState::kIdle});
  ASSERT_EQ(idle_only.size(), 3u);
  EXPECT_EQ(idle_only[0].length(), SimTime::minutes(2));
  EXPECT_EQ(idle_only[1].length(), SimTime::minutes(1));
}

TEST(NodeStateLog, SampleCountsAggregateStates) {
  NodeStateLog log{3, SimTime::zero()};
  log.record({SimTime::seconds(15), 0, ObservedNodeState::kHpc});
  log.record({SimTime::seconds(15), 1, ObservedNodeState::kPilot});
  log.finalize(SimTime::seconds(40));
  const auto samples = log.sample_counts(SimTime::seconds(10));
  ASSERT_EQ(samples.size(), 5u);  // t = 0,10,20,30,40
  EXPECT_EQ(samples[0].idle, 3u);
  EXPECT_EQ(samples[1].idle, 3u);
  EXPECT_EQ(samples[2].idle, 1u);
  EXPECT_EQ(samples[2].hpc, 1u);
  EXPECT_EQ(samples[2].pilot, 1u);
  EXPECT_EQ(samples[2].available(), 2u);
}

TEST(NodeStateLog, SampledPeriodsIgnoreSlivers) {
  NodeStateLog log{1, SimTime::zero()};
  // Busy except a 5-second idle sliver at 12..17s: invisible to a 10 s
  // sampler (samples at 10 and 20 both see busy).
  log.record({SimTime::zero(), 0, ObservedNodeState::kHpc});
  log.record({SimTime::seconds(12), 0, ObservedNodeState::kIdle});
  log.record({SimTime::seconds(17), 0, ObservedNodeState::kHpc});
  log.finalize(SimTime::minutes(1));
  const auto periods =
      log.sampled_periods(SimTime::seconds(10), {ObservedNodeState::kIdle});
  EXPECT_TRUE(periods.empty());
}

TEST(NodeStateLog, SampledPeriodsMergeAcrossShortBusyBlips) {
  NodeStateLog log{1, SimTime::zero()};
  // idle 0..33s, busy 33..37s (between samples 30 and 40), idle 37..60s:
  // the sampler sees one continuous idle run over samples 0..50 (the
  // final instant t=60 is the log end, exclusive).
  log.record({SimTime::seconds(33), 0, ObservedNodeState::kHpc});
  log.record({SimTime::seconds(37), 0, ObservedNodeState::kIdle});
  log.finalize(SimTime::seconds(60));
  const auto periods =
      log.sampled_periods(SimTime::seconds(10), {ObservedNodeState::kIdle});
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0], SimTime::seconds(60));  // 6 samples x 10 s
}

TEST(NodeStateLog, SampledPeriodsSplitOnVisibleBusy) {
  NodeStateLog log{1, SimTime::zero()};
  // idle 0..25s, busy 25..45s (covers samples 30 and 40), idle 45..70s.
  log.record({SimTime::seconds(25), 0, ObservedNodeState::kHpc});
  log.record({SimTime::seconds(45), 0, ObservedNodeState::kIdle});
  log.finalize(SimTime::seconds(70));
  const auto periods =
      log.sampled_periods(SimTime::seconds(10), {ObservedNodeState::kIdle});
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0], SimTime::seconds(30));  // samples 0,10,20
  EXPECT_EQ(periods[1], SimTime::seconds(20));  // samples 50,60
}

TEST(NodeStateLog, SampledPeriodsPerNodeIndependent) {
  NodeStateLog log{2, SimTime::zero()};
  log.record({SimTime::seconds(30), 0, ObservedNodeState::kHpc});
  // node 1 stays idle throughout.
  log.finalize(SimTime::seconds(60));
  const auto periods =
      log.sampled_periods(SimTime::seconds(10), {ObservedNodeState::kIdle});
  ASSERT_EQ(periods.size(), 2u);
}

TEST(NodeStateLog, TimeWeightedMeanAvailable) {
  NodeStateLog log{2, SimTime::zero()};
  // node 0: idle the whole 10 min. node 1: hpc from minute 5.
  log.record({SimTime::minutes(5), 1, ObservedNodeState::kHpc});
  log.finalize(SimTime::minutes(10));
  // availability area = 10 + 5 node-min over 10 min horizon = 1.5 avg.
  EXPECT_DOUBLE_EQ(log.time_weighted_mean_available(), 1.5);
}

TEST(NodeStateLog, RecordAfterFinalizeThrows) {
  NodeStateLog log{1, SimTime::zero()};
  log.finalize(SimTime::minutes(1));
  EXPECT_THROW(log.record({SimTime::minutes(2), 0, ObservedNodeState::kHpc}),
               std::logic_error);
}

TEST(NodeStateLog, OutOfRangeNodeThrows) {
  NodeStateLog log{1, SimTime::zero()};
  EXPECT_THROW(log.record({SimTime::zero(), 5, ObservedNodeState::kHpc}),
               std::out_of_range);
}

}  // namespace
}  // namespace hpcwhisk::analysis
