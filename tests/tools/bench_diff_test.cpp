// Unit contract of the bench regression gate (tools/bench_diff_core.hpp):
// JSON parsing/flattening, glob rule matching, direction/threshold
// comparisons, and the schema refusal path. The CLI's --self-test covers
// the same core end-to-end; these tests pin the pieces individually.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "bench_diff_core.hpp"

namespace hpcwhisk::benchdiff {
namespace {

JsonValue parse_or_die(const std::string& text) {
  JsonValue v;
  JsonParser p{text};
  EXPECT_TRUE(p.parse(v)) << p.error() << " in: " << text;
  return v;
}

TEST(JsonParser, HandlesEveryReportConstruct) {
  const JsonValue v = parse_or_die(
      R"({"n": -2.5e-1, "big": 1e300, "s": "a\\b\"c", "t": true,)"
      R"( "nul": null, "arr": [1, [2]], "obj": {"k": "v"}, "empty": {}})");
  std::map<std::string, JsonValue> flat;
  flatten(v, "", flat);
  EXPECT_DOUBLE_EQ(flat.at("n").number, -0.25);
  EXPECT_DOUBLE_EQ(flat.at("big").number, 1e300);
  EXPECT_EQ(flat.at("s").string, "a\\b\"c");
  EXPECT_TRUE(flat.at("t").boolean);
  EXPECT_EQ(flat.at("nul").kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(flat.at("arr[0]").number, 1.0);
  EXPECT_DOUBLE_EQ(flat.at("arr[1][0]").number, 2.0);
  EXPECT_EQ(flat.at("obj.k").string, "v");
  // Empty containers flatten to nothing — no phantom paths.
  EXPECT_EQ(flat.count("empty"), 0u);
}

TEST(JsonParser, RejectsMalformedInput) {
  for (const char* bad :
       {"{", "[1,", "{\"a\" 1}", "{\"a\": }", "tru", "{} {}", "\"unterminated"}) {
    JsonValue v;
    std::string text{bad};
    JsonParser p{text};
    EXPECT_FALSE(p.parse(v)) << bad;
    EXPECT_FALSE(p.error().empty()) << bad;
  }
}

TEST(GlobMatch, SegmentsAndIndices) {
  EXPECT_TRUE(glob_match("a.b", "a.b"));
  EXPECT_FALSE(glob_match("a.b", "a.c"));
  EXPECT_TRUE(glob_match("modes.*.p95_ms", "modes.sjf-affinity.p95_ms"));
  EXPECT_TRUE(glob_match("experiments[*].events", "experiments[3].events"));
  EXPECT_TRUE(glob_match("*", "anything[0].at.all"));
  EXPECT_FALSE(glob_match("legs[*].p95", "legs[0].p99"));
  EXPECT_TRUE(glob_match("a*c*e", "abcde"));
  EXPECT_FALSE(glob_match("a*z", "abc"));
}

std::string header(const std::string& bench, int schema = 2) {
  return R"({"schema_version": )" + std::to_string(schema) +
         R"(, "bench": ")" + bench + R"(", )";
}

TEST(Diff, DirectionsAndTolerances) {
  const std::vector<Rule> rules{
      {"t", "lat", Direction::kLowerBetter, 0.10, 0},
      {"t", "rate", Direction::kHigherBetter, 0, 5.0},
      {"t", "ok", Direction::kRequireTrue},
      {"t", "hash", Direction::kExact},
  };
  const JsonValue base = parse_or_die(
      header("t") + R"("lat": 100, "rate": 50, "ok": true, "hash": "aa"})");

  // Inside tolerance on every axis.
  {
    const JsonValue cand = parse_or_die(
        header("t") + R"("lat": 109, "rate": 45.5, "ok": true, "hash": "aa"})");
    const DiffResult r = diff(base, cand, rules);
    EXPECT_EQ(r.verdict, Verdict::kPass);
    EXPECT_EQ(r.regressions, 0u);
    EXPECT_EQ(r.checks.size(), 4u);
  }
  // Improvement in the "wrong" numeric direction is never a regression.
  {
    const JsonValue cand = parse_or_die(
        header("t") + R"("lat": 1, "rate": 500, "ok": true, "hash": "aa"})");
    EXPECT_EQ(diff(base, cand, rules).verdict, Verdict::kPass);
  }
  // Each axis fails independently past its threshold.
  {
    const JsonValue cand = parse_or_die(
        header("t") + R"("lat": 111, "rate": 44, "ok": false, "hash": "bb"})");
    const DiffResult r = diff(base, cand, rules);
    EXPECT_EQ(r.verdict, Verdict::kFail);
    EXPECT_EQ(r.regressions, 4u);
    EXPECT_EQ(r.exit_code(), 1);
  }
  // A vanished or type-changed metric is a failure, not a skip.
  {
    const JsonValue cand = parse_or_die(
        header("t") + R"("rate": 50, "ok": true, "hash": "aa", "lat": "n/a"})");
    const DiffResult r = diff(base, cand, rules);
    EXPECT_EQ(r.verdict, Verdict::kFail);
  }
}

TEST(Diff, RefusesCrossSchemaAndCrossBench) {
  const JsonValue base = parse_or_die(header("t") + R"("x": 1})");
  EXPECT_EQ(diff(base, parse_or_die(header("t", 3) + R"("x": 1})")).verdict,
            Verdict::kSchemaMismatch);
  EXPECT_EQ(diff(base, parse_or_die(header("u") + R"("x": 1})")).verdict,
            Verdict::kSchemaMismatch);
  EXPECT_EQ(diff(base, parse_or_die(R"({"x": 1})")).verdict,
            Verdict::kSchemaMismatch);
  EXPECT_EQ(diff(parse_or_die(R"({"x": 1})"), base).verdict,
            Verdict::kSchemaMismatch);
  EXPECT_EQ(diff(base, parse_or_die(header("u") + R"("x": 1})")).exit_code(),
            2);
}

TEST(Diff, GlobRulesFanOutOverBaselinePaths) {
  const std::vector<Rule> rules{
      {"t", "legs[*].p95", Direction::kLowerBetter, 0, 0},
  };
  const JsonValue base = parse_or_die(
      header("t") + R"("legs": [{"p95": 10}, {"p95": 20}, {"p95": 30}]})");
  const JsonValue cand = parse_or_die(
      header("t") + R"("legs": [{"p95": 10}, {"p95": 25}, {"p95": 30}]})");
  const DiffResult r = diff(base, cand, rules);
  EXPECT_EQ(r.checks.size(), 3u);
  EXPECT_EQ(r.regressions, 1u);
  EXPECT_EQ(r.checks[1].path, "legs[1].p95");
  EXPECT_EQ(r.checks[1].status, CheckStatus::kRegression);
}

TEST(Diff, VerdictJsonRoundTrips) {
  const JsonValue base =
      parse_or_die(header("obs_report") + R"("traced_overhead": 0.01})");
  const JsonValue cand =
      parse_or_die(header("obs_report") + R"("traced_overhead": 0.9})");
  const DiffResult r = diff(base, cand);
  EXPECT_EQ(r.verdict, Verdict::kFail);
  std::ostringstream os;
  write_verdict(os, r, "base.json", "cand.json");
  const std::string text = os.str();
  const JsonValue doc = parse_or_die(text);
  ASSERT_NE(doc.find("verdict"), nullptr);
  EXPECT_EQ(doc.find("verdict")->string, "fail");
  EXPECT_EQ(doc.find("bench")->string, "obs_report");
  EXPECT_GE(doc.find("regressions")->number, 1.0);
}

}  // namespace
}  // namespace hpcwhisk::benchdiff
