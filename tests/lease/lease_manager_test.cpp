#include "hpcwhisk/lease/lease_manager.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::lease {
namespace {

using sim::SimTime;

LeaseConfig test_config() {
  LeaseConfig cfg;
  cfg.enabled = true;
  cfg.term = SimTime::seconds(30);
  cfg.hot_interarrival = SimTime::millis(500);
  cfg.warm_interarrival = SimTime::seconds(5);
  cfg.min_arrivals = 3;
  cfg.max_leases_per_worker = 2;
  return cfg;
}

/// Feeds `n` arrivals spaced `gap` apart starting at `start`; returns the
/// time of the last arrival.
SimTime feed(LeaseManager& lm, const std::string& fn, SimTime start,
             SimTime gap, int n) {
  SimTime t = start;
  for (int i = 0; i < n; ++i) {
    lm.observe_arrival(fn, t);
    t = t + gap;
  }
  return t - gap;
}

TEST(LeaseManagerTest, TierNeedsMinArrivals) {
  LeaseManager lm{test_config()};
  EXPECT_EQ(lm.tier("f"), Tier::kCold);
  lm.observe_arrival("f", SimTime::seconds(1));
  lm.observe_arrival("f", SimTime::seconds(1) + SimTime::millis(100));
  EXPECT_EQ(lm.tier("f"), Tier::kCold);  // 2 arrivals < min_arrivals
  lm.observe_arrival("f", SimTime::seconds(1) + SimTime::millis(200));
  EXPECT_EQ(lm.tier("f"), Tier::kHot);
}

TEST(LeaseManagerTest, TieringFollowsInterArrival) {
  LeaseManager lm{test_config()};
  feed(lm, "hot", SimTime::seconds(1), SimTime::millis(100), 5);
  feed(lm, "warm", SimTime::seconds(1), SimTime::seconds(2), 5);
  feed(lm, "cold", SimTime::seconds(1), SimTime::seconds(60), 5);
  EXPECT_EQ(lm.tier("hot"), Tier::kHot);
  EXPECT_EQ(lm.tier("warm"), Tier::kWarm);
  EXPECT_EQ(lm.tier("cold"), Tier::kCold);
  EXPECT_GT(lm.interarrival("warm"), lm.interarrival("hot"));
}

TEST(LeaseManagerTest, AcquireFindRenewRevoke) {
  LeaseManager lm{test_config()};
  const SimTime t0 = SimTime::seconds(10);
  const Lease* l = lm.acquire("f", 3, t0);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->worker, 3u);
  EXPECT_EQ(l->expires_at, t0 + SimTime::seconds(30));
  EXPECT_EQ(lm.lease_count(), 1u);
  EXPECT_EQ(lm.leases_on(3), 1u);

  // A second acquire for the same function is refused.
  EXPECT_EQ(lm.acquire("f", 4, t0), nullptr);

  // find() before expiry returns the lease; renew extends it.
  EXPECT_NE(lm.find("f", t0 + SimTime::seconds(29)), nullptr);
  EXPECT_TRUE(lm.renew("f", t0 + SimTime::seconds(29)));
  EXPECT_NE(lm.find("f", t0 + SimTime::seconds(58)), nullptr);

  EXPECT_TRUE(lm.revoke("f"));
  EXPECT_FALSE(lm.revoke("f"));
  EXPECT_EQ(lm.lease_count(), 0u);
  EXPECT_EQ(lm.leases_on(3), 0u);
  EXPECT_EQ(lm.stats().granted, 1u);
  EXPECT_EQ(lm.stats().revoked, 1u);
}

TEST(LeaseManagerTest, ExpiryIsLazy) {
  LeaseManager lm{test_config()};
  const SimTime t0 = SimTime::seconds(10);
  ASSERT_NE(lm.acquire("f", 0, t0), nullptr);
  // Past the term: the lookup itself lapses the lease.
  EXPECT_EQ(lm.find("f", t0 + SimTime::seconds(31)), nullptr);
  EXPECT_EQ(lm.lease_count(), 0u);
  EXPECT_EQ(lm.stats().expired, 1u);
  // The function can re-acquire afterwards.
  EXPECT_NE(lm.acquire("f", 1, t0 + SimTime::seconds(32)), nullptr);
}

TEST(LeaseManagerTest, OnHitAutoRenews) {
  LeaseManager lm{test_config()};
  const SimTime t0 = SimTime::seconds(10);
  ASSERT_NE(lm.acquire("f", 0, t0), nullptr);
  const SimTime t1 = t0 + SimTime::seconds(20);
  lm.on_hit("f", t1);
  EXPECT_EQ(lm.stats().hits, 1u);
  EXPECT_EQ(lm.stats().renewed, 1u);
  const Lease* l = lm.find("f", t1 + SimTime::seconds(29));
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->hits, 1u);
  EXPECT_EQ(l->expires_at, t1 + SimTime::seconds(30));
}

TEST(LeaseManagerTest, PerWorkerCap) {
  LeaseManager lm{test_config()};  // cap 2
  const SimTime t0 = SimTime::seconds(1);
  EXPECT_NE(lm.acquire("a", 7, t0), nullptr);
  EXPECT_NE(lm.acquire("b", 7, t0), nullptr);
  EXPECT_EQ(lm.acquire("c", 7, t0), nullptr);  // worker 7 full
  EXPECT_NE(lm.acquire("c", 8, t0), nullptr);  // another worker is fine
}

TEST(LeaseManagerTest, RevokeWorkerDropsAllItsLeases) {
  LeaseManager lm{test_config()};
  const SimTime t0 = SimTime::seconds(1);
  ASSERT_NE(lm.acquire("a", 7, t0), nullptr);
  ASSERT_NE(lm.acquire("b", 7, t0), nullptr);
  ASSERT_NE(lm.acquire("c", 8, t0), nullptr);
  EXPECT_EQ(lm.revoke_worker(7), 2u);
  EXPECT_EQ(lm.lease_count(), 1u);
  EXPECT_EQ(lm.leases_on(7), 0u);
  EXPECT_NE(lm.find("c", t0), nullptr);
  EXPECT_EQ(lm.stats().revoked, 2u);
  EXPECT_EQ(lm.revoke_worker(7), 0u);
}

TEST(LeaseManagerTest, DeterministicAcrossInstances) {
  // Same call sequence => same lease ids, tiers and stats: the manager is
  // a pure fold, which is what lets SimCheck sample lease mode.
  auto run = [](LeaseManager& lm) {
    feed(lm, "f", SimTime::seconds(1), SimTime::millis(100), 5);
    (void)lm.acquire("f", 2, SimTime::seconds(2));
    lm.on_hit("f", SimTime::seconds(3));
    (void)lm.find("f", SimTime::seconds(40));
  };
  LeaseManager a{test_config()};
  LeaseManager b{test_config()};
  run(a);
  run(b);
  EXPECT_EQ(a.stats().granted, b.stats().granted);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().expired, b.stats().expired);
  EXPECT_EQ(a.interarrival("f"), b.interarrival("f"));
}

}  // namespace
}  // namespace hpcwhisk::lease
