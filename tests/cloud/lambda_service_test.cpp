#include "hpcwhisk/cloud/lambda_service.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::cloud {
namespace {

using sim::Rng;
using sim::SimTime;
using sim::Simulation;

struct Fixture {
  Simulation sim;
  whisk::FunctionRegistry registry;

  Fixture() {
    registry.put(whisk::fixed_duration_function("fn", SimTime::millis(100)));
  }
};

TEST(LambdaService, CpuShareScalesWithMemory) {
  Fixture f;
  LambdaService lambda{f.sim, f.registry, {}, Rng{1}};
  EXPECT_DOUBLE_EQ(lambda.cpu_share(1792), 1.0);
  EXPECT_DOUBLE_EQ(lambda.cpu_share(896), 0.5);
  EXPECT_DOUBLE_EQ(lambda.cpu_share(2048), 1.0);  // capped: single thread
}

TEST(LambdaService, FirstInvocationIsCold) {
  Fixture f;
  LambdaService lambda{f.sim, f.registry, {}, Rng{1}};
  const auto id = lambda.invoke("fn", 2048);
  EXPECT_TRUE(lambda.invocation(id).cold_start);
  f.sim.run();
  EXPECT_EQ(lambda.completed(), 1u);
  EXPECT_GT(lambda.invocation(id).end_time, lambda.invocation(id).submit_time);
}

TEST(LambdaService, WarmWithinKeepWarmWindow) {
  Fixture f;
  LambdaService lambda{f.sim, f.registry, {}, Rng{1}};
  (void)lambda.invoke("fn", 2048);
  f.sim.run();
  const auto second = lambda.invoke("fn", 2048);
  EXPECT_FALSE(lambda.invocation(second).cold_start);
}

TEST(LambdaService, ColdAgainAfterKeepWarmExpires) {
  Fixture f;
  LambdaService::Config cfg;
  cfg.keep_warm = SimTime::minutes(10);
  LambdaService lambda{f.sim, f.registry, cfg, Rng{1}};
  (void)lambda.invoke("fn", 2048);
  f.sim.run();
  f.sim.settle_to(SimTime::minutes(30));
  const auto late = lambda.invoke("fn", 2048);
  EXPECT_TRUE(lambda.invocation(late).cold_start);
}

TEST(LambdaService, LowMemoryDilatesExecution) {
  Fixture f;
  LambdaService::Config cfg;
  cfg.compute_slowdown = 1.0;
  LambdaService lambda{f.sim, f.registry, cfg, Rng{1}};
  const auto big = lambda.invoke("fn", 1792);   // full vCPU
  const auto small = lambda.invoke("fn", 448);  // quarter vCPU
  f.sim.run();
  const double ratio = lambda.invocation(small).internal_duration.to_seconds() /
                       lambda.invocation(big).internal_duration.to_seconds();
  EXPECT_NEAR(ratio, 4.0, 0.01);
}

TEST(LambdaService, ComputeSlowdownMatchesFig7) {
  // Fig. 7: Prometheus ~15% faster than Lambda at 2048 MB. The model's
  // internal duration at 2048 MB must be compute_slowdown x the function
  // body (no CPU-share penalty above 1792 MB).
  Fixture f;
  LambdaService::Config cfg;
  cfg.compute_slowdown = 1.15;
  LambdaService lambda{f.sim, f.registry, cfg, Rng{1}};
  const auto id = lambda.invoke("fn", 2048);
  f.sim.run();
  EXPECT_NEAR(lambda.invocation(id).internal_duration.to_seconds(),
              0.100 * 1.15, 1e-5);
}

TEST(LambdaService, AlwaysAccepts) {
  Fixture f;
  LambdaService lambda{f.sim, f.registry, {}, Rng{1}};
  for (int i = 0; i < 100; ++i) (void)lambda.invoke("fn", 2048);
  f.sim.run();
  EXPECT_EQ(lambda.completed(), 100u);
  EXPECT_EQ(lambda.invocations().size(), 100u);
}

TEST(LambdaService, UnknownFunctionThrows) {
  Fixture f;
  LambdaService lambda{f.sim, f.registry, {}, Rng{1}};
  EXPECT_THROW(lambda.invoke("nope", 2048), std::out_of_range);
  EXPECT_THROW(lambda.invocation(99), std::out_of_range);
}

}  // namespace
}  // namespace hpcwhisk::cloud
