#include "hpcwhisk/runtime/container_pool.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk::runtime {
namespace {

using sim::Rng;
using sim::SimTime;

ContainerPool make_pool(std::size_t max_containers = 4,
                        std::int64_t memory_mb = 4096) {
  ContainerPool::Config cfg;
  cfg.max_containers = max_containers;
  cfg.memory_mb = memory_mb;
  cfg.idle_timeout = SimTime::minutes(10);
  return ContainerPool{cfg, RuntimeProfile::singularity(), Rng{1}};
}

TEST(ContainerPool, FirstAcquireIsColdStart) {
  auto pool = make_pool();
  const auto r = pool.acquire("f", 256, SimTime::zero());
  EXPECT_EQ(r.kind, AcquireResult::Kind::kCold);
  EXPECT_GT(r.start_latency, SimTime::zero());
  EXPECT_EQ(pool.total_containers(), 1u);
}

TEST(ContainerPool, WarmReuseAfterRelease) {
  auto pool = make_pool();
  const auto r1 = pool.acquire("f", 256, SimTime::zero());
  pool.mark_running(r1.container, SimTime::zero());
  pool.release(r1.container, SimTime::seconds(1));
  const auto r2 = pool.acquire("f", 256, SimTime::seconds(2));
  EXPECT_EQ(r2.kind, AcquireResult::Kind::kWarm);
  EXPECT_EQ(r2.container, r1.container);
  // Warm start is much cheaper than a cold start.
  EXPECT_LT(r2.start_latency, SimTime::millis(200));
}

TEST(ContainerPool, DifferentFunctionGetsDifferentContainer) {
  auto pool = make_pool();
  const auto r1 = pool.acquire("f", 256, SimTime::zero());
  pool.mark_running(r1.container, SimTime::zero());
  pool.release(r1.container, SimTime::zero());
  const auto r2 = pool.acquire("g", 256, SimTime::zero());
  EXPECT_EQ(r2.kind, AcquireResult::Kind::kCold);
  EXPECT_NE(r2.container, r1.container);
}

TEST(ContainerPool, EvictsIdleLruWhenCapReached) {
  auto pool = make_pool(/*max_containers=*/2);
  const auto a = pool.acquire("a", 256, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  pool.release(a.container, SimTime::seconds(1));
  const auto b = pool.acquire("b", 256, SimTime::seconds(2));
  pool.mark_running(b.container, SimTime::seconds(2));
  pool.release(b.container, SimTime::seconds(3));
  // Cap is 2; acquiring c must evict the LRU (a).
  const auto c = pool.acquire("c", 256, SimTime::seconds(4));
  EXPECT_EQ(c.kind, AcquireResult::Kind::kCold);
  EXPECT_EQ(pool.total_containers(), 2u);
  EXPECT_EQ(pool.counters().evictions, 1u);
  // a is gone: next acquire of a is cold again.
  const auto a2 = pool.acquire("a", 256, SimTime::seconds(5));
  EXPECT_EQ(a2.kind, AcquireResult::Kind::kCold);
}

TEST(ContainerPool, RejectsWhenAllBusy) {
  auto pool = make_pool(/*max_containers=*/2);
  const auto a = pool.acquire("a", 256, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  const auto b = pool.acquire("b", 256, SimTime::zero());
  pool.mark_running(b.container, SimTime::zero());
  const auto c = pool.acquire("c", 256, SimTime::zero());
  EXPECT_EQ(c.kind, AcquireResult::Kind::kRejected);
  EXPECT_EQ(pool.counters().rejections, 1u);
}

TEST(ContainerPool, RejectsOversizedFunction) {
  auto pool = make_pool(4, /*memory_mb=*/1024);
  const auto r = pool.acquire("huge", 2048, SimTime::zero());
  EXPECT_EQ(r.kind, AcquireResult::Kind::kRejected);
}

TEST(ContainerPool, MemoryBudgetForcesEviction) {
  auto pool = make_pool(/*max_containers=*/10, /*memory_mb=*/1024);
  const auto a = pool.acquire("a", 512, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  pool.release(a.container, SimTime::zero());
  const auto b = pool.acquire("b", 512, SimTime::zero());
  pool.mark_running(b.container, SimTime::zero());
  // 1024 MB used; c (512) requires evicting the idle a.
  const auto c = pool.acquire("c", 512, SimTime::zero());
  EXPECT_EQ(c.kind, AcquireResult::Kind::kCold);
  EXPECT_EQ(pool.memory_in_use_mb(), 1024);
  EXPECT_EQ(pool.counters().evictions, 1u);
}

TEST(ContainerPool, ReapIdleRemovesOnlyStale) {
  auto pool = make_pool();
  const auto a = pool.acquire("a", 256, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  pool.release(a.container, SimTime::minutes(1));
  const auto b = pool.acquire("b", 256, SimTime::minutes(12));
  pool.mark_running(b.container, SimTime::minutes(12));
  pool.release(b.container, SimTime::minutes(12));
  // a idle since minute 1 (> 10 min ago), b fresh.
  EXPECT_EQ(pool.reap_idle(SimTime::minutes(13)), 1u);
  EXPECT_EQ(pool.total_containers(), 1u);
}

TEST(ContainerPool, ClearDropsEverything) {
  auto pool = make_pool();
  const auto a = pool.acquire("a", 256, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  (void)pool.acquire("b", 256, SimTime::zero());
  pool.clear();
  EXPECT_EQ(pool.total_containers(), 0u);
  EXPECT_EQ(pool.busy_containers(), 0u);
  EXPECT_EQ(pool.memory_in_use_mb(), 0);
}

TEST(ContainerPool, RemoveBusyContainer) {
  auto pool = make_pool();
  const auto a = pool.acquire("a", 256, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  EXPECT_EQ(pool.busy_containers(), 1u);
  pool.remove(a.container);
  EXPECT_EQ(pool.busy_containers(), 0u);
  EXPECT_EQ(pool.total_containers(), 0u);
}

TEST(ContainerPool, CountersTrackKinds) {
  auto pool = make_pool();
  const auto a = pool.acquire("a", 256, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  pool.release(a.container, SimTime::zero());
  (void)pool.acquire("a", 256, SimTime::zero());
  EXPECT_EQ(pool.counters().cold_starts, 1u);
  EXPECT_EQ(pool.counters().warm_hits, 1u);
}

TEST(RuntimeProfile, SingularityIsRootless) {
  EXPECT_FALSE(RuntimeProfile::singularity().requires_root_daemon());
  EXPECT_TRUE(RuntimeProfile::docker().requires_root_daemon());
}

TEST(RuntimeProfile, ColdStartUnderHalfSecondTypically) {
  // Sec. II: a container "is created usually in less than 500 ms".
  auto profile = RuntimeProfile::singularity();
  Rng rng{2};
  int under = 0;
  for (int i = 0; i < 1000; ++i) {
    if (profile.sample_cold_start(rng) < SimTime::millis(500)) ++under;
  }
  EXPECT_GT(under, 900);
}

}  // namespace
}  // namespace hpcwhisk::runtime
