// Stem-cell (prewarm) container pool behaviour.

#include <gtest/gtest.h>

#include "hpcwhisk/runtime/container_pool.hpp"

namespace hpcwhisk::runtime {
namespace {

using sim::Rng;
using sim::SimTime;

ContainerPool make_pool(std::size_t prewarm = 2, std::size_t cap = 8) {
  ContainerPool::Config cfg;
  cfg.max_containers = cap;
  cfg.memory_mb = 8192;
  cfg.prewarm_count = prewarm;
  cfg.prewarm_kind = "python:3";
  cfg.prewarm_memory_mb = 256;
  return ContainerPool{cfg, RuntimeProfile::singularity(), Rng{1}};
}

TEST(Prewarm, MaintainCreatesStemCells) {
  auto pool = make_pool(3);
  EXPECT_EQ(pool.prewarmed_containers(), 0u);
  pool.maintain_prewarm(SimTime::zero());
  EXPECT_EQ(pool.prewarmed_containers(), 3u);
  EXPECT_EQ(pool.total_containers(), 3u);
  // Idempotent.
  pool.maintain_prewarm(SimTime::seconds(1));
  EXPECT_EQ(pool.prewarmed_containers(), 3u);
}

TEST(Prewarm, MatchingKindSpecializesInsteadOfColdStart) {
  auto pool = make_pool(2);
  pool.maintain_prewarm(SimTime::zero());
  // After boot (a few hundred ms) the stem cell is usable.
  const auto r = pool.acquire("new-fn", "python:3", 128, SimTime::seconds(5));
  EXPECT_EQ(r.kind, AcquireResult::Kind::kPrewarmed);
  EXPECT_LT(r.start_latency, SimTime::millis(100));  // near-warm
  EXPECT_EQ(pool.prewarmed_containers(), 1u);
  EXPECT_EQ(pool.counters().prewarm_hits, 1u);
}

TEST(Prewarm, BootingStemCellNotUsableYet) {
  auto pool = make_pool(1);
  pool.maintain_prewarm(SimTime::zero());
  // Immediately after creation the stem cell is still booting: cold path.
  const auto r = pool.acquire("fn", "python:3", 128, SimTime::millis(1));
  EXPECT_EQ(r.kind, AcquireResult::Kind::kCold);
}

TEST(Prewarm, MismatchedKindGoesCold) {
  auto pool = make_pool(2);
  pool.maintain_prewarm(SimTime::zero());
  const auto r = pool.acquire("fn", "nodejs:18", 128, SimTime::seconds(5));
  EXPECT_EQ(r.kind, AcquireResult::Kind::kCold);
  EXPECT_EQ(pool.prewarmed_containers(), 2u);
}

TEST(Prewarm, WarmHitStillPreferredOverStemCell) {
  auto pool = make_pool(2);
  pool.maintain_prewarm(SimTime::zero());
  const auto first = pool.acquire("fn", "python:3", 128, SimTime::seconds(5));
  pool.mark_running(first.container, SimTime::seconds(5));
  pool.release(first.container, SimTime::seconds(6));
  const auto second = pool.acquire("fn", "python:3", 128, SimTime::seconds(7));
  EXPECT_EQ(second.kind, AcquireResult::Kind::kWarm);
  EXPECT_EQ(second.container, first.container);
}

TEST(Prewarm, StemCellsEvictedFirstUnderPressure) {
  auto pool = make_pool(2, /*cap=*/3);
  pool.maintain_prewarm(SimTime::zero());
  // Fill the cap with busy containers of another kind: stem cells are
  // sacrificed first.
  const auto a = pool.acquire("a", "go:1", 512, SimTime::seconds(5));
  pool.mark_running(a.container, SimTime::seconds(5));
  const auto b = pool.acquire("b", "go:1", 512, SimTime::seconds(5));
  pool.mark_running(b.container, SimTime::seconds(5));
  const auto c = pool.acquire("c", "go:1", 512, SimTime::seconds(5));
  EXPECT_NE(c.kind, AcquireResult::Kind::kRejected);
  EXPECT_EQ(pool.prewarmed_containers(), 0u);
  EXPECT_GE(pool.counters().evictions, 2u);
}

TEST(Prewarm, NeverEvictsToCreateStemCells) {
  auto pool = make_pool(2, /*cap=*/2);
  const auto a = pool.acquire("a", "go:1", 512, SimTime::zero());
  pool.mark_running(a.container, SimTime::zero());
  const auto b = pool.acquire("b", "go:1", 512, SimTime::zero());
  pool.mark_running(b.container, SimTime::zero());
  pool.maintain_prewarm(SimTime::seconds(1));
  EXPECT_EQ(pool.prewarmed_containers(), 0u);  // no room, no eviction
}

TEST(Prewarm, DisabledWhenCountZero) {
  auto pool = make_pool(0);
  pool.maintain_prewarm(SimTime::zero());
  EXPECT_EQ(pool.prewarmed_containers(), 0u);
}

}  // namespace
}  // namespace hpcwhisk::runtime
