#include <gtest/gtest.h>

#include "hpcwhisk/runtime/container_pool.hpp"

namespace hpcwhisk::runtime {
namespace {

using sim::Rng;
using sim::SimTime;

ContainerPool make_pool(KeepAliveConfig ka, std::size_t max_containers = 8,
                        std::int64_t memory_mb = 8192) {
  ContainerPool::Config cfg;
  cfg.max_containers = max_containers;
  cfg.memory_mb = memory_mb;
  cfg.idle_timeout = SimTime::minutes(10);
  cfg.keep_alive = ka;
  cfg.prewarm_kind.clear();  // no stem cells unless a test asks
  return ContainerPool{cfg, RuntimeProfile::singularity(), Rng{1}};
}

/// One full acquire/run/release cycle at `now`.
void cycle(ContainerPool& pool, const std::string& fn, SimTime now) {
  const auto r = pool.acquire(fn, 256, now);
  ASSERT_NE(r.kind, AcquireResult::Kind::kRejected);
  pool.mark_running(r.container, now);
  pool.release(r.container, now);
}

TEST(KeepAlivePolicyNames, RoundTrip) {
  for (const auto p : {KeepAlivePolicy::kFixed, KeepAlivePolicy::kAdaptive,
                       KeepAlivePolicy::kHybrid}) {
    const auto back = keep_alive_policy_from_string(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(keep_alive_policy_from_string("bogus").has_value());
}

TEST(KeepAliveFixed, TimeoutIsTheConfiguredConstant) {
  auto pool = make_pool(KeepAliveConfig{});  // kFixed
  cycle(pool, "f", SimTime::seconds(1));
  cycle(pool, "f", SimTime::seconds(2));
  // No arrival history is kept and the timeout never moves.
  EXPECT_EQ(pool.effective_idle_timeout("f"), SimTime::minutes(10));
  EXPECT_EQ(pool.effective_idle_timeout("never-seen"), SimTime::minutes(10));
}

TEST(KeepAliveAdaptive, TimeoutTracksInterArrival) {
  KeepAliveConfig ka;
  ka.policy = KeepAlivePolicy::kAdaptive;
  ka.margin = 4.0;
  ka.floor = SimTime::seconds(30);
  ka.ceiling = SimTime::minutes(20);
  auto pool = make_pool(ka);
  // Before any history the fixed timeout is the fallback.
  EXPECT_EQ(pool.effective_idle_timeout("f"), SimTime::minutes(10));
  // Steady one-minute gaps: timeout = margin * gap = 4 min.
  for (int i = 0; i < 6; ++i)
    cycle(pool, "f", SimTime::minutes(static_cast<double>(i)));
  EXPECT_EQ(pool.effective_idle_timeout("f"), SimTime::minutes(4));
}

TEST(KeepAliveAdaptive, ClampsToFloorAndCeiling) {
  KeepAliveConfig ka;
  ka.policy = KeepAlivePolicy::kAdaptive;
  ka.margin = 4.0;
  ka.floor = SimTime::seconds(30);
  ka.ceiling = SimTime::minutes(20);
  auto pool = make_pool(ka);
  // 100 ms gaps: 4 * 0.1 s = 0.4 s, below the 30 s floor.
  for (int i = 0; i < 6; ++i)
    cycle(pool, "hot", SimTime::millis(100.0 * static_cast<double>(i + 1)));
  EXPECT_EQ(pool.effective_idle_timeout("hot"), SimTime::seconds(30));
  // 30 min gaps: 4 * 30 min = 2 h, above the 20 min ceiling.
  for (int i = 0; i < 4; ++i)
    cycle(pool, "rare", SimTime::minutes(30.0 * static_cast<double>(i + 1)));
  EXPECT_EQ(pool.effective_idle_timeout("rare"), SimTime::minutes(20));
}

TEST(KeepAliveHybrid, PressureScalesTowardFloor) {
  KeepAliveConfig ka;
  ka.policy = KeepAlivePolicy::kHybrid;
  ka.margin = 4.0;
  ka.floor = SimTime::seconds(30);
  ka.ceiling = SimTime::minutes(20);
  ka.pressure_low = 0.5;
  ka.pressure_high = 1.0;
  auto pool = make_pool(ka, /*max_containers=*/4, /*memory_mb=*/8192);
  // One-minute gaps: adaptive base 4 min.
  for (int i = 0; i < 6; ++i)
    cycle(pool, "f", SimTime::minutes(static_cast<double>(i)));
  // One container of four: occupancy 0.25, below pressure_low — untouched.
  EXPECT_EQ(pool.effective_idle_timeout("f"), SimTime::minutes(4));
  // Fill to full occupancy: the timeout collapses to the floor.
  for (const char* fn : {"g", "h", "i"}) {
    const auto r = pool.acquire(fn, 256, SimTime::minutes(6));
    pool.mark_running(r.container, SimTime::minutes(6));
  }
  EXPECT_EQ(pool.total_containers(), 4u);
  EXPECT_EQ(pool.effective_idle_timeout("f"), SimTime::seconds(30));
}

TEST(KeepAliveAdaptive, ReapHonorsPerFunctionTimeouts) {
  KeepAliveConfig ka;
  ka.policy = KeepAlivePolicy::kAdaptive;
  ka.margin = 4.0;
  ka.floor = SimTime::seconds(30);
  ka.ceiling = SimTime::minutes(20);
  auto pool = make_pool(ka);
  // "hot" arrives every 10 s (timeout clamps to the 30 s... no: 40 s),
  // "slow" every 4 min (timeout 16 min).
  for (int i = 0; i < 6; ++i)
    cycle(pool, "hot", SimTime::seconds(10.0 * static_cast<double>(i + 1)));
  for (int i = 0; i < 3; ++i)
    cycle(pool, "slow", SimTime::minutes(4.0 * static_cast<double>(i + 1)));
  ASSERT_EQ(pool.total_containers(), 2u);
  // At t=14min: hot idle since 60 s -> way past its 40 s timeout, reaped;
  // slow idle since 12 min -> inside its 16 min timeout, kept.
  EXPECT_EQ(pool.reap_idle(SimTime::minutes(14)), 1u);
  EXPECT_EQ(pool.total_containers(), 1u);
  EXPECT_TRUE(pool.has_warm_idle("slow", 256));
  EXPECT_FALSE(pool.has_warm_idle("hot", 256));
}

TEST(ContainerPoolEviction, OldestIdleEvictedFirst) {
  auto pool = make_pool(KeepAliveConfig{}, /*max_containers=*/3);
  // Idle in age order: a (oldest), b, c.
  cycle(pool, "a", SimTime::seconds(1));
  cycle(pool, "b", SimTime::seconds(2));
  cycle(pool, "c", SimTime::seconds(3));
  // Cap reached: admitting d evicts exactly the LRU head (a).
  const auto d = pool.acquire("d", 256, SimTime::seconds(4));
  EXPECT_EQ(d.kind, AcquireResult::Kind::kCold);
  EXPECT_EQ(pool.counters().evictions, 1u);
  EXPECT_FALSE(pool.has_warm_idle("a", 256));
  EXPECT_TRUE(pool.has_warm_idle("b", 256));
  EXPECT_TRUE(pool.has_warm_idle("c", 256));
}

TEST(ContainerPoolEviction, WarmReuseRefreshesLruPosition) {
  auto pool = make_pool(KeepAliveConfig{}, /*max_containers=*/2);
  cycle(pool, "a", SimTime::seconds(1));
  cycle(pool, "b", SimTime::seconds(2));
  // Touch a again: b becomes the LRU head.
  cycle(pool, "a", SimTime::seconds(3));
  (void)pool.acquire("c", 256, SimTime::seconds(4));
  EXPECT_TRUE(pool.has_warm_idle("a", 256));
  EXPECT_FALSE(pool.has_warm_idle("b", 256));
}

TEST(ContainerPoolEviction, StemCellsEvictBeforeWarmContainers) {
  ContainerPool::Config cfg;
  cfg.max_containers = 3;
  cfg.memory_mb = 8192;
  cfg.prewarm_kind = "python:3";
  cfg.prewarm_count = 2;
  ContainerPool pool{cfg, RuntimeProfile::singularity(), Rng{1}};
  pool.maintain_prewarm(SimTime::zero());
  ASSERT_EQ(pool.prewarmed_containers(), 2u);
  const auto a = pool.acquire("a", 256, SimTime::seconds(1));
  ASSERT_EQ(a.kind, AcquireResult::Kind::kCold);  // wrong kind for stem cells
  pool.mark_running(a.container, SimTime::seconds(1));
  pool.release(a.container, SimTime::seconds(2));
  // Cap reached (2 stem + a). Admitting b must sacrifice a stem cell,
  // never the warm container.
  const auto b = pool.acquire("b", 256, SimTime::seconds(3));
  EXPECT_EQ(b.kind, AcquireResult::Kind::kCold);
  EXPECT_EQ(pool.prewarmed_containers(), 1u);
  EXPECT_TRUE(pool.has_warm_idle("a", 256));
}

TEST(ContainerPoolPrewarm, RefillNeverEvictsUnderPressure) {
  ContainerPool::Config cfg;
  cfg.max_containers = 2;
  cfg.memory_mb = 8192;
  cfg.prewarm_kind = "python:3";
  cfg.prewarm_count = 2;
  ContainerPool pool{cfg, RuntimeProfile::singularity(), Rng{1}};
  // Two busy containers occupy the whole cap.
  for (const char* fn : {"a", "b"}) {
    const auto r = pool.acquire(fn, 256, SimTime::zero());
    pool.mark_running(r.container, SimTime::zero());
  }
  pool.maintain_prewarm(SimTime::seconds(1));
  EXPECT_EQ(pool.prewarmed_containers(), 0u);  // refused, nothing evicted
  EXPECT_EQ(pool.counters().evictions, 0u);
  EXPECT_EQ(pool.total_containers(), 2u);
}

TEST(ContainerPoolPrewarm, RefillStopsAtMemoryBudget) {
  ContainerPool::Config cfg;
  cfg.max_containers = 16;
  cfg.memory_mb = 900;  // room for one 256 MB stem cell next to 512 busy
  cfg.prewarm_kind = "python:3";
  cfg.prewarm_count = 4;
  cfg.prewarm_memory_mb = 256;
  ContainerPool pool{cfg, RuntimeProfile::singularity(), Rng{1}};
  const auto r = pool.acquire("a", 512, SimTime::zero());
  pool.mark_running(r.container, SimTime::zero());
  pool.maintain_prewarm(SimTime::seconds(1));
  EXPECT_EQ(pool.prewarmed_containers(), 1u);  // 512 + 256 <= 900, +256 > 900
  EXPECT_EQ(pool.counters().evictions, 0u);
}

TEST(ContainerPoolProbes, HasWarmIdleAndCanAdmit) {
  auto pool = make_pool(KeepAliveConfig{}, /*max_containers=*/2,
                        /*memory_mb=*/512);
  EXPECT_FALSE(pool.has_warm_idle("f", 256));
  EXPECT_TRUE(pool.can_admit(256));
  const auto r = pool.acquire("f", 256, SimTime::zero());
  pool.mark_running(r.container, SimTime::zero());
  EXPECT_FALSE(pool.has_warm_idle("f", 256));  // busy, not idle
  pool.release(r.container, SimTime::seconds(1));
  EXPECT_TRUE(pool.has_warm_idle("f", 256));
  EXPECT_FALSE(pool.has_warm_idle("f", 512));  // too small for 512
  // 256 of 512 MB in use: one more 256 fits, but not beyond the budget.
  EXPECT_TRUE(pool.can_admit(256));
  EXPECT_FALSE(pool.can_admit(512));
}

}  // namespace
}  // namespace hpcwhisk::runtime
