// Quickstart: the paper's introductory example (Fig. 3) as a runnable
// program. A 5-node cluster executes 4 HPC jobs; HPC-Whisk pilot jobs
// fill the gaps, register OpenWhisk invokers, and serve function calls —
// all without delaying the HPC jobs.
//
//   $ ./quickstart
//   $ ./quickstart --trace-out out.json   # + Perfetto span timeline
//
// Walks through: wiring the system, registering a function, submitting
// the HPC schedule of Fig. 3, invoking functions, and printing both the
// node timeline and the invocation outcomes. With --trace-out the whole
// run is traced and exported as Chrome trace_event JSON — open it at
// https://ui.perfetto.dev to scrub activation and pilot spans.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/obs/export.hpp"
#include "hpcwhisk/obs/observability.hpp"

using namespace hpcwhisk;

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
  }

  sim::Simulation simulation;
  obs::Observability obs;  // trace + metrics sink (used with --trace-out)

  // 1. A 5-node cluster with the canonical two partitions: "hpc" (tier 1)
  //    and preemptible "pilot" (tier 0, 3-minute grace).
  core::HpcWhiskSystem::Config cfg;
  cfg.slurm.node_count = 5;
  cfg.slurm.min_pass_gap = sim::SimTime::zero();  // tiny cluster: react fast
  cfg.manager.model = core::SupplyModel::kFib;
  cfg.manager.fib_lengths = core::job_length_set("C1");  // short pilots
  cfg.manager.fib_per_length = 2;
  if (!trace_out.empty()) cfg.obs = &obs;
  core::HpcWhiskSystem system{simulation, cfg};

  // 2. A FaaS function: 100 ms of compute, 128 MB.
  system.functions().put(whisk::fixed_duration_function(
      "hello", sim::SimTime::millis(100), 128));

  // 3. Record the node timeline.
  analysis::NodeStateLog log{5, sim::SimTime::zero()};
  system.slurm().set_node_observer(
      [&log](const slurm::NodeTransition& t) { log.record(t); });

  // 4. The four HPC jobs of Fig. 3 (nodes x minutes): 3x5, 1x13, 2x7, 4x8.
  const auto submit_hpc = [&](std::uint32_t nodes, double minutes) {
    slurm::JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = nodes;
    spec.time_limit = sim::SimTime::minutes(minutes);
    spec.actual_runtime = sim::SimTime::minutes(minutes);
    return system.slurm().submit(spec);
  };
  submit_hpc(3, 5);
  submit_hpc(1, 13);
  submit_hpc(2, 7);
  submit_hpc(4, 8);

  // 5. Start the pilot supply and a client issuing one call per second.
  system.start();
  auto client = simulation.every(sim::SimTime::seconds(1), [&system] {
    (void)system.client().invoke("hello");
  });

  simulation.run_until(sim::SimTime::minutes(25));
  client.stop();
  log.finalize(sim::SimTime::minutes(25));

  // 6. Report.
  std::cout << "node timeline (one row per state change):\n";
  for (const auto& iv : log.intervals()) {
    std::printf("  node %u  %-6s  %8s -> %8s  (%s)\n", iv.node,
                to_string(iv.state), iv.start.to_string().c_str(),
                iv.end.to_string().c_str(), iv.length().to_string().c_str());
  }

  const auto& cc = system.controller().counters();
  const auto& wc = system.client().counters();
  std::cout << "\nFaaS outcomes over 25 simulated minutes:\n"
            << "  issued via wrapper: "
            << wc.hpcwhisk_calls + wc.commercial_calls << "\n"
            << "  served by HPC-Whisk: " << wc.hpcwhisk_calls << "\n"
            << "  offloaded to commercial cloud (Alg. 1): "
            << wc.commercial_calls << "\n"
            << "  completed on-cluster: " << cc.completed << "\n"
            << "  interrupted & requeued during drains: " << cc.interrupted
            << "\n";

  const auto& mc = system.manager().counters();
  std::cout << "\npilot jobs: started " << mc.started << ", preempted "
            << mc.preempted << ", ran to their limit " << mc.timed_out
            << "\n";
  std::cout << "\nthe HPC jobs were never delayed: pilots are preemptible\n"
               "tier-0 jobs that drain within seconds of SIGTERM.\n";

  if (!trace_out.empty()) {
    std::ofstream os{trace_out};
    obs::ExportInfo info;
    info.run = "quickstart";
    obs::write_perfetto_json(os, obs.trace, info);
    std::cout << "\nwrote " << obs.trace.size() << " trace events to "
              << trace_out << " — open at https://ui.perfetto.dev\n";
  }
  return 0;
}
