// production_day: a Prometheus-scale day in the life of HPC-Whisk.
//
// Runs the calibrated 2239-node workload with the fib job manager and a
// steady FaaS load, then prints the operator's dashboard: idle surface,
// coverage, invoker fleet health, and FaaS quality of service.
//
//   $ ./production_day [hours] [fib|var] [seed]

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/analysis/report.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/slurm/status.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

using namespace hpcwhisk;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 8.0;
  const bool var = argc > 2 && std::strcmp(argv[2], "var") == 0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  sim::Simulation simulation;
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = 2239;
  cfg.manager.model = var ? core::SupplyModel::kVar : core::SupplyModel::kFib;
  core::HpcWhiskSystem system{simulation, cfg};

  trace::HpcWorkloadGenerator workload{simulation, system.slurm(), {},
                                       sim::Rng{seed ^ 0xABCDEF}};
  analysis::NodeStateLog log{2239, sim::SimTime::zero()};
  system.slurm().set_node_observer(
      [&log](const slurm::NodeTransition& t) { log.record(t); });

  const auto functions =
      trace::register_sleep_functions(system.functions(), 100);
  trace::FaasLoadGenerator::Config faas_cfg;
  faas_cfg.rate_qps = 10.0;
  faas_cfg.functions = functions;
  trace::FaasLoadGenerator faas{
      simulation, faas_cfg,
      [&system](const std::string& fn) { (void)system.client().invoke(fn); },
      sim::Rng{seed ^ 0xFEED}};

  workload.start();
  system.start();
  const auto burn_in = sim::SimTime::hours(4);
  const auto horizon = burn_in + sim::SimTime::hours(hours);
  simulation.at(burn_in, [&faas, horizon] { faas.start(horizon); });
  simulation.run_until(horizon);
  log.finalize(horizon);

  std::cout << "cluster state at end of day (sinfo):\n"
            << slurm::format_sinfo(system.slurm()) << "\n";

  std::cout << "production_day: " << (var ? "var" : "fib") << " manager, "
            << hours << " h measured after " << burn_in.to_string()
            << " burn-in, seed " << seed << "\n\n";

  std::vector<analysis::StateCounts> samples;
  for (const auto& s : log.sample_counts(sim::SimTime::seconds(10)))
    if (s.at >= burn_in) samples.push_back(s);
  const auto report = analysis::slurm_level_report(samples);

  analysis::print_table(
      std::cout, "cluster dashboard",
      {"metric", "value"},
      {
          {"avg nodes available (would-be idle)",
           analysis::fmt(report.available_nodes.avg, 2)},
          {"avg nodes running FaaS pilots",
           analysis::fmt(report.pilot_workers.avg, 2)},
          {"idle surface converted to FaaS",
           analysis::fmt_pct(report.coverage)},
          {"time with zero available nodes",
           analysis::fmt_pct(report.zero_available_share)},
      });

  const auto& cc = system.controller().counters();
  const auto& wc = system.client().counters();
  const auto& mc = system.manager().counters();
  analysis::print_table(
      std::cout, "FaaS quality of service (Alg. 1 wrapper active)",
      {"metric", "value"},
      {
          {"calls issued", std::to_string(wc.hpcwhisk_calls +
                                          wc.commercial_calls)},
          {"served on-cluster", std::to_string(wc.hpcwhisk_calls)},
          {"offloaded to commercial cloud",
           std::to_string(wc.commercial_calls)},
          {"on-cluster completions", std::to_string(cc.completed)},
          {"on-cluster timeouts", std::to_string(cc.timed_out)},
          {"executions interrupted by drains (requeued)",
           std::to_string(cc.interrupted)},
      });
  analysis::print_table(
      std::cout, "pilot fleet",
      {"metric", "value"},
      {
          {"pilots started", std::to_string(mc.started)},
          {"preempted by HPC jobs", std::to_string(mc.preempted)},
          {"ran to their own limit", std::to_string(mc.timed_out)},
          {"HPC jobs completed meanwhile",
           std::to_string(system.slurm().counters().completed)},
      });
  return 0;
}
