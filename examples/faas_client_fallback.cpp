// faas_client_fallback: Alg. 1 in action.
//
// Demonstrates the client-side wrapper that makes HPC-Whisk usable
// despite non-availability periods (Sec. III-E): when the controller
// returns 503 (no invokers), the wrapper offloads calls to a commercial
// cloud for 60 s before retrying the cluster.
//
// The scenario stages a real outage: a small cluster whose nodes are
// all claimed by HPC work for a while, so the invoker fleet drains to
// zero and recovers later.

#include <cstdio>
#include <iostream>

#include "hpcwhisk/core/system.hpp"

using namespace hpcwhisk;

int main() {
  sim::Simulation simulation;
  core::HpcWhiskSystem::Config cfg;
  cfg.slurm.node_count = 4;
  cfg.slurm.min_pass_gap = sim::SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = 2;
  core::HpcWhiskSystem system{simulation, cfg};

  system.functions().put(whisk::fixed_duration_function(
      "analyze", sim::SimTime::millis(50), 128));

  system.start();

  // Stage the outage: at t=5min an HPC job takes the whole cluster for
  // 10 minutes. Every pilot is preempted; the controller will 503.
  simulation.at(sim::SimTime::minutes(5), [&system] {
    slurm::JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = 4;
    spec.time_limit = sim::SimTime::minutes(10);
    spec.actual_runtime = sim::SimTime::minutes(10);
    system.slurm().submit(spec);
  });

  // A client calling once per second through the Alg. 1 wrapper, logging
  // which backend served each minute.
  struct MinuteStats {
    int hpc{0};
    int commercial{0};
  };
  std::vector<MinuteStats> minutes(26);
  simulation.every(sim::SimTime::seconds(1), [&] {
    const auto now = simulation.now();
    if (now > sim::SimTime::minutes(25)) return;
    const auto result = system.client().invoke("analyze");
    auto& m = minutes[static_cast<std::size_t>(now / sim::SimTime::minutes(1))];
    if (result.backend == core::ClientWrapper::Backend::kHpcWhisk) {
      ++m.hpc;
    } else {
      ++m.commercial;
    }
  });

  simulation.run_until(sim::SimTime::minutes(26));

  std::cout << "per-minute backend split (Alg. 1 wrapper):\n"
               "  minute | HPC-Whisk | commercial\n";
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    std::printf("  %6zu | %9d | %10d%s\n", i, minutes[i].hpc,
                minutes[i].commercial,
                (i >= 5 && i < 15) ? "   <- cluster busy with HPC job" : "");
  }

  const auto& wc = system.client().counters();
  std::cout << "\nwrapper counters: " << wc.hpcwhisk_calls
            << " on-cluster, " << wc.commercial_calls << " offloaded, "
            << wc.rejections_seen << " 503s observed\n"
            << "commercial invocations completed: "
            << system.commercial().completed() << "\n"
            << "\nno call was ever lost: 503s trigger the 60 s fallback\n"
               "window; accepted calls survive worker churn via the fast "
               "lane.\n";
  return 0;
}
