// joblength_tuning: use the a-posteriori simulator to tune pilot job
// lengths for *your* cluster (the Sec. IV-B methodology as a tool).
//
// Generates a week of the calibrated workload, extracts the idleness
// periods, and evaluates both the paper's candidate sets and any custom
// set passed on the command line (comma-separated minutes):
//
//   $ ./joblength_tuning              # evaluate the paper's sets
//   $ ./joblength_tuning 2,6,18,54    # evaluate a custom set too

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "hpcwhisk/analysis/clairvoyant.hpp"
#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/analysis/report.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

using namespace hpcwhisk;

int main(int argc, char** argv) {
  // A compact cluster keeps this example fast; the method is the point.
  constexpr std::uint32_t kNodes = 560;
  const auto horizon = sim::SimTime::days(3);
  const auto burn_in = sim::SimTime::hours(4);

  sim::Simulation simulation;
  slurm::Slurmctld ctld{simulation, {.node_count = kNodes},
                        core::default_partitions()};
  trace::HpcWorkloadGenerator workload{simulation, ctld, {}, sim::Rng{11}};
  analysis::NodeStateLog log{kNodes, sim::SimTime::zero()};
  ctld.set_node_observer(
      [&log](const slurm::NodeTransition& t) { log.record(t); });

  std::cout << "simulating " << horizon.to_string() << " of a " << kNodes
            << "-node cluster to collect idleness periods...\n";
  workload.start();
  simulation.run_until(horizon);
  log.finalize(horizon);
  const auto periods = log.merged_periods({slurm::ObservedNodeState::kIdle});

  const auto evaluate = [&](const std::string& name,
                            std::vector<sim::SimTime> lengths) {
    analysis::ClairvoyantSimulator::Config cfg;
    cfg.job_lengths = std::move(lengths);
    const analysis::ClairvoyantSimulator clairvoyant{cfg};
    const auto r = clairvoyant.run(periods, burn_in, horizon);
    std::vector<std::string> row{
        name,
        std::to_string(r.jobs),
        analysis::fmt_pct(r.warmup_share),
        analysis::fmt_pct(r.ready_share),
        analysis::fmt_pct(r.unused_share),
        analysis::fmt(r.ready_workers.avg, 2),
    };
    return row;
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& name : {"A1", "A2", "A3", "B", "C1", "C2"})
    rows.push_back(evaluate(name, core::job_length_set(name)));

  if (argc > 1) {
    std::vector<sim::SimTime> custom;
    std::stringstream ss{argv[1]};
    std::string token;
    while (std::getline(ss, token, ','))
      custom.push_back(sim::SimTime::minutes(std::atof(token.c_str())));
    std::sort(custom.begin(), custom.end());
    rows.push_back(evaluate(std::string("custom{") + argv[1] + "}",
                            std::move(custom)));
  }

  analysis::print_table(
      std::cout, "clairvoyant evaluation of pilot job-length sets",
      {"set", "# jobs", "warm up", "ready", "not used", "avg ready workers"},
      rows);
  std::cout << "pick the set with the highest ready share for your fib job "
               "manager\n(the paper picked A1 this way; Table I).\n";
  return 0;
}
